#include "sync/round_kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/schedule.hpp"

namespace papc::sync {
namespace {

TEST(ShardedRound, DrawScheduleMatchesPerShardSubstreams) {
    // Shard s of round r must draw exactly the sequence of
    // rng.substream(r, s).uniform_index(n) — nothing about the driver
    // (batching, scratch reuse, worker pool) may change which raw words
    // feed which node.
    const std::size_t n = 2 * kRoundBlock + 137;  // partial tail shard
    const std::uint64_t round = 9;
    Rng rng(52);

    ShardedRoundDriver driver(n, /*threads=*/1);
    ASSERT_EQ(driver.num_shards(), 3U);
    std::vector<std::vector<std::uint64_t>> per_shard(driver.num_shards());
    driver.run_batched<3>(rng, round,
                          [&](std::size_t shard, std::size_t, std::size_t count,
                              const std::uint64_t* idx, auto& /*arena*/) {
        per_shard[shard].assign(idx, idx + 3 * count);
    });

    // The driver advances the parent by exactly one draw per round (the
    // shared-generator decorrelation nonce), then derives shard
    // substreams from the advanced state.
    Rng reference(52);
    (void)reference.next_u64();
    EXPECT_EQ(rng.next_u64(), [&] {
        Rng expect = reference;
        return expect.next_u64();
    }());
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
        Rng sub = reference.substream(round, s);
        for (std::size_t d = 0; d < per_shard[s].size(); ++d) {
            ASSERT_EQ(per_shard[s][d], sub.uniform_index(n))
                << "shard " << s << " draw " << d;
        }
    }
}

TEST(ShardedRound, ThreadCountDoesNotChangeDrawsOrCoverage) {
    const std::size_t n = 3 * kRoundBlock + 57;

    std::vector<std::vector<std::uint64_t>> single;
    {
        Rng rng(53);
        ShardedRoundDriver driver(n, 1);
        single.resize(driver.num_shards());
        driver.run_batched<1>(rng, 4,
                              [&](std::size_t shard, std::size_t,
                                  std::size_t count, const std::uint64_t* idx,
                                  auto& /*arena*/) {
            single[shard].assign(idx, idx + count);
        });
    }

    Rng rng(53);
    ShardedRoundDriver driver(n, /*threads=*/4);
    std::vector<std::vector<std::uint64_t>> pooled(driver.num_shards());
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    driver.run_batched<1>(rng, 4,
                          [&](std::size_t shard, std::size_t base,
                              std::size_t count, const std::uint64_t* idx,
                              auto& /*arena*/) {
        pooled[shard].assign(idx, idx + count);
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_LT(idx[i], n);
            visits[base + i].fetch_add(1);
        }
    });

    EXPECT_EQ(pooled, single);
    for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(visits[v].load(), 1) << v;
}

TEST(BufferedSampler, MatchesDirectUniformIndexSequence) {
    Rng scalar(54);
    Rng batched(54);
    BufferedSampler sampler(64);  // small buffer: exercise several refills
    for (int i = 0; i < 1000; ++i) {
        // Alternate ranges like 3-majority does (peer index, then tie-break).
        const std::uint64_t n = (i % 3 == 2) ? 3 : 1000003;
        ASSERT_EQ(sampler.uniform_index(batched, n), scalar.uniform_index(n))
            << "draw " << i;
    }
}

TEST(BufferedSampler, HeavyRejectionStaysEquivalent) {
    Rng scalar(55);
    Rng batched(55);
    BufferedSampler sampler(32);
    const std::uint64_t n = (1ULL << 63U) + 7;  // ~half of raws rejected
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(sampler.uniform_index(batched, n), scalar.uniform_index(n))
            << "draw " << i;
    }
}

TEST(OpinionDeltaAccumulator, MatchesFullReset) {
    const std::uint32_t k = 5;
    Rng rng(56);
    std::vector<Opinion> colors(513);
    for (auto& c : colors) {
        const auto draw = rng.uniform_index(k + 1);
        c = draw == k ? kUndecided : static_cast<Opinion>(draw);
    }
    OpinionCensus fused(colors.size(), k);
    fused.reset(colors);
    OpinionDeltaAccumulator deltas(k);

    std::vector<Opinion> next = colors;
    for (std::size_t v = 0; v < next.size(); ++v) {
        const auto draw = rng.uniform_index(k + 1);
        const Opinion to = draw == k ? kUndecided : static_cast<Opinion>(draw);
        deltas.note(next[v], to);
        next[v] = to;
    }
    deltas.commit(fused);

    OpinionCensus reference(next.size(), k);
    reference.reset(next);
    for (Opinion j = 0; j < k; ++j) {
        EXPECT_EQ(fused.count(j), reference.count(j)) << "opinion " << j;
    }
    EXPECT_EQ(fused.undecided_count(), reference.undecided_count());

    // commit() clears the accumulator: an empty commit is a no-op.
    deltas.commit(fused);
    for (Opinion j = 0; j < k; ++j) {
        EXPECT_EQ(fused.count(j), reference.count(j));
    }
}

TEST(PackedState, RoundTripsGenerationAndOpinion) {
    const PackedState w = pack_state(7, 3);
    EXPECT_EQ(packed_generation(w), 7U);
    EXPECT_EQ(packed_opinion(w), 3U);
    EXPECT_EQ(pack_state(0, 0), 0ULL);
    // Promotion by one generation is a single add on the packed word.
    EXPECT_EQ(w + (1ULL << 32U), pack_state(8, 3));
    EXPECT_EQ(packed_generation(pack_state(0xFFFFFFFFU, 0xFFFFFFFEU)),
              0xFFFFFFFFU);
    EXPECT_EQ(packed_opinion(pack_state(0xFFFFFFFFU, 0xFFFFFFFEU)),
              0xFFFFFFFEU);
}

TEST(FusedCensus, MatchesRecountAfterManyAlgorithm1Rounds) {
    // The incremental (delta-applied) census must equal a from-scratch
    // recount of the per-node packed state after every round.
    const std::size_t n = 4096;
    const std::uint32_t k = 4;
    Rng workload_rng(57);
    const Assignment a = make_biased_plurality(n, k, 1.3, workload_rng);
    ScheduleParams params;
    params.n = n;
    params.k = k;
    params.alpha = 1.3;
    Algorithm1 alg(a, Schedule(params));
    Rng rng(58);
    for (int round = 0; round < 30; ++round) {
        alg.step(rng);
        std::vector<Generation> generations(n);
        std::vector<Opinion> opinions(n);
        for (NodeId v = 0; v < n; ++v) {
            generations[v] = alg.generation(v);
            opinions[v] = alg.color(v);
        }
        GenerationCensus reference(n, k);
        reference.rebuild(generations, opinions);
        ASSERT_EQ(alg.census().highest_populated(),
                  reference.highest_populated())
            << "round " << round;
        for (Generation g = 0; g <= reference.highest_populated(); ++g) {
            ASSERT_EQ(alg.census().generation_size(g),
                      reference.generation_size(g))
                << "round " << round << " generation " << g;
            for (Opinion j = 0; j < k; ++j) {
                ASSERT_EQ(alg.census().count(g, j), reference.count(g, j))
                    << "round " << round << " generation " << g << " opinion "
                    << j;
            }
        }
        for (Opinion j = 0; j < k; ++j) {
            ASSERT_EQ(alg.census().opinion_total(j),
                      reference.opinion_total(j));
        }
    }
}

}  // namespace
}  // namespace papc::sync
