#include "sync/round_kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/schedule.hpp"

namespace papc::sync {
namespace {

TEST(BlockedRound, DrawOrderMatchesScalarPerNodeLoop) {
    // The kernel must consume the generator exactly like the scalar loop:
    // node 0's kDraws samples first, then node 1's, ... across blocks.
    const std::size_t n = 2 * kRoundBlock + 137;  // partial tail block
    Rng scalar(52);
    Rng batched(52);

    std::vector<std::uint64_t> expected(3 * n);
    for (auto& value : expected) value = scalar.uniform_index(n);

    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> seen;
    seen.reserve(3 * n);
    blocked_round<3>(batched, n, scratch,
                     [&](std::size_t, std::size_t count,
                         const std::uint64_t* idx) {
        seen.insert(seen.end(), idx, idx + 3 * count);
    });
    EXPECT_EQ(seen, expected);
    EXPECT_EQ(batched.next_u64(), scalar.next_u64());  // state in lockstep
}

TEST(BlockedRound, CoversEveryNodeExactlyOnce) {
    const std::size_t n = kRoundBlock + 57;
    Rng rng(53);
    std::vector<std::uint64_t> scratch;
    std::vector<int> visits(n, 0);
    blocked_round<1>(rng, n, scratch,
                     [&](std::size_t base, std::size_t count,
                         const std::uint64_t* idx) {
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_LT(idx[i], n);
            ++visits[base + i];
        }
    });
    for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(visits[v], 1) << v;
}

TEST(BufferedSampler, MatchesDirectUniformIndexSequence) {
    Rng scalar(54);
    Rng batched(54);
    BufferedSampler sampler(64);  // small buffer: exercise several refills
    for (int i = 0; i < 1000; ++i) {
        // Alternate ranges like 3-majority does (peer index, then tie-break).
        const std::uint64_t n = (i % 3 == 2) ? 3 : 1000003;
        ASSERT_EQ(sampler.uniform_index(batched, n), scalar.uniform_index(n))
            << "draw " << i;
    }
}

TEST(BufferedSampler, HeavyRejectionStaysEquivalent) {
    Rng scalar(55);
    Rng batched(55);
    BufferedSampler sampler(32);
    const std::uint64_t n = (1ULL << 63U) + 7;  // ~half of raws rejected
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(sampler.uniform_index(batched, n), scalar.uniform_index(n))
            << "draw " << i;
    }
}

TEST(OpinionDeltaAccumulator, MatchesFullReset) {
    const std::uint32_t k = 5;
    Rng rng(56);
    std::vector<Opinion> colors(513);
    for (auto& c : colors) {
        const auto draw = rng.uniform_index(k + 1);
        c = draw == k ? kUndecided : static_cast<Opinion>(draw);
    }
    OpinionCensus fused(colors.size(), k);
    fused.reset(colors);
    OpinionDeltaAccumulator deltas(k);

    std::vector<Opinion> next = colors;
    for (std::size_t v = 0; v < next.size(); ++v) {
        const auto draw = rng.uniform_index(k + 1);
        const Opinion to = draw == k ? kUndecided : static_cast<Opinion>(draw);
        deltas.note(next[v], to);
        next[v] = to;
    }
    deltas.commit(fused);

    OpinionCensus reference(next.size(), k);
    reference.reset(next);
    for (Opinion j = 0; j < k; ++j) {
        EXPECT_EQ(fused.count(j), reference.count(j)) << "opinion " << j;
    }
    EXPECT_EQ(fused.undecided_count(), reference.undecided_count());

    // commit() clears the accumulator: an empty commit is a no-op.
    deltas.commit(fused);
    for (Opinion j = 0; j < k; ++j) {
        EXPECT_EQ(fused.count(j), reference.count(j));
    }
}

TEST(PackedState, RoundTripsGenerationAndOpinion) {
    const PackedState w = pack_state(7, 3);
    EXPECT_EQ(packed_generation(w), 7U);
    EXPECT_EQ(packed_opinion(w), 3U);
    EXPECT_EQ(pack_state(0, 0), 0ULL);
    // Promotion by one generation is a single add on the packed word.
    EXPECT_EQ(w + (1ULL << 32U), pack_state(8, 3));
    EXPECT_EQ(packed_generation(pack_state(0xFFFFFFFFU, 0xFFFFFFFEU)),
              0xFFFFFFFFU);
    EXPECT_EQ(packed_opinion(pack_state(0xFFFFFFFFU, 0xFFFFFFFEU)),
              0xFFFFFFFEU);
}

TEST(FusedCensus, MatchesRecountAfterManyAlgorithm1Rounds) {
    // The incremental (delta-applied) census must equal a from-scratch
    // recount of the per-node packed state after every round.
    const std::size_t n = 4096;
    const std::uint32_t k = 4;
    Rng workload_rng(57);
    const Assignment a = make_biased_plurality(n, k, 1.3, workload_rng);
    ScheduleParams params;
    params.n = n;
    params.k = k;
    params.alpha = 1.3;
    Algorithm1 alg(a, Schedule(params));
    Rng rng(58);
    for (int round = 0; round < 30; ++round) {
        alg.step(rng);
        std::vector<Generation> generations(n);
        std::vector<Opinion> opinions(n);
        for (NodeId v = 0; v < n; ++v) {
            generations[v] = alg.generation(v);
            opinions[v] = alg.color(v);
        }
        GenerationCensus reference(n, k);
        reference.rebuild(generations, opinions);
        ASSERT_EQ(alg.census().highest_populated(),
                  reference.highest_populated())
            << "round " << round;
        for (Generation g = 0; g <= reference.highest_populated(); ++g) {
            ASSERT_EQ(alg.census().generation_size(g),
                      reference.generation_size(g))
                << "round " << round << " generation " << g;
            for (Opinion j = 0; j < k; ++j) {
                ASSERT_EQ(alg.census().count(g, j), reference.count(g, j))
                    << "round " << round << " generation " << g << " opinion "
                    << j;
            }
        }
        for (Opinion j = 0; j < k; ++j) {
            ASSERT_EQ(alg.census().opinion_total(j),
                      reference.opinion_total(j));
        }
    }
}

}  // namespace
}  // namespace papc::sync
