/// \file simd_equivalence_test.cpp
/// The PR 7 SIMD contract: dispatch is a pure throughput knob. The AVX2
/// gather kernels fill byte-identical strip buffers to the scalar loops,
/// so forcing dispatch either way must leave every fixed-seed trajectory
/// bit-identical — pinned here with full-state FNV hashes over all five
/// sync protocols at threads {1, 2, 8}, plus direct output comparison of
/// the two gather primitives on adversarial index patterns. On machines
/// without AVX2 (or -DPAPC_DISABLE_SIMD builds) the cross-path suites
/// skip; the scalar-vs-scalar run still exercises the override plumbing.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "opinion/assignment.hpp"
#include "opinion/packed_array.hpp"
#include "support/cpu.hpp"
#include "support/random.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/simd_gather.hpp"

namespace papc::sync {
namespace {

using support::SimdLevel;

/// Forces a dispatch level for one scope; restores env/detection after.
class DispatchGuard {
public:
    explicit DispatchGuard(SimdLevel level) { support::set_simd_override(level); }
    ~DispatchGuard() { support::clear_simd_override(); }
    DispatchGuard(const DispatchGuard&) = delete;
    DispatchGuard& operator=(const DispatchGuard&) = delete;
};

bool avx2_available() {
    return support::detected_simd() >= SimdLevel::kAvx2;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xFFU;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t state_hash(const ColorVectorDynamics& dynamics, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) hash = fnv1a(hash, dynamics.color(v));
    return hash;
}

std::uint64_t state_hash(const Algorithm1& alg, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) {
        hash = fnv1a(hash, (static_cast<std::uint64_t>(alg.generation(v)) << 32U) |
                               alg.color(v));
    }
    return hash;
}

// Spans three shards with a partial tail (shard boundaries, worker pool,
// gather-strip tails all exercised).
constexpr std::size_t kN = 2 * 4096 + 1234;
constexpr int kRounds = 12;

/// Runs `make(threads)` kRounds rounds under the given dispatch level for
/// threads {1, 2, 8} and returns the three final-state hashes.
template <typename MakeDynamics>
std::vector<std::uint64_t> hashes_under(SimdLevel level, MakeDynamics&& make,
                                        std::uint64_t seed) {
    const DispatchGuard guard(level);
    std::vector<std::uint64_t> hashes;
    for (const std::size_t threads : {1U, 2U, 8U}) {
        auto dynamics = make(threads);
        Rng rng(seed);
        for (int round = 0; round < kRounds; ++round) dynamics->step(rng);
        hashes.push_back(state_hash(*dynamics, kN));
    }
    return hashes;
}

template <typename MakeDynamics>
void expect_dispatch_equivalent(MakeDynamics&& make, std::uint64_t seed) {
    const std::vector<std::uint64_t> scalar =
        hashes_under(SimdLevel::kScalar, make, seed);
    ASSERT_EQ(scalar.size(), 3U);
    EXPECT_EQ(scalar[1], scalar[0]);
    EXPECT_EQ(scalar[2], scalar[0]);
    if (!avx2_available()) {
        GTEST_SKIP() << "AVX2 not available: scalar-only run verified";
    }
    const std::vector<std::uint64_t> avx2 =
        hashes_under(SimdLevel::kAvx2, make, seed);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(avx2[i], scalar[i]) << "thread-count variant " << i;
    }
}

Assignment equivalence_assignment(std::uint32_t k) {
    Rng workload_rng(771);
    return make_biased_plurality(kN, k, 1.2, workload_rng);
}

TEST(SimdEquivalence, Algorithm1) {
    const Assignment a = equivalence_assignment(8);
    ScheduleParams params;
    params.n = kN;
    params.k = 8;
    params.alpha = 1.2;
    expect_dispatch_equivalent(
        [&](std::size_t threads) {
            return std::make_unique<Algorithm1>(a, Schedule(params), threads);
        },
        4041);
}

TEST(SimdEquivalence, PullVoting) {
    const Assignment a = equivalence_assignment(8);
    expect_dispatch_equivalent(
        [&](std::size_t threads) {
            return std::make_unique<PullVoting>(a, threads);
        },
        4042);
}

TEST(SimdEquivalence, TwoChoices) {
    const Assignment a = equivalence_assignment(8);
    expect_dispatch_equivalent(
        [&](std::size_t threads) {
            return std::make_unique<TwoChoices>(a, threads);
        },
        4043);
}

TEST(SimdEquivalence, ThreeMajority) {
    const Assignment a = equivalence_assignment(8);
    expect_dispatch_equivalent(
        [&](std::size_t threads) {
            return std::make_unique<ThreeMajority>(a, threads);
        },
        4044);
}

TEST(SimdEquivalence, UndecidedState) {
    const Assignment a = equivalence_assignment(3);
    expect_dispatch_equivalent(
        [&](std::size_t threads) {
            return std::make_unique<UndecidedState>(a, threads);
        },
        4045);
}

// ------------------------------------------------------ gather primitives

TEST(SimdEquivalence, GatherU64MatchesScalarOnRandomIndices) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 not available";
    Rng rng(4046);
    std::vector<std::uint64_t> array(100003);
    rng.fill_u64(array.data(), array.size());
    // Odd counts exercise the 4-wide main loop's scalar tail.
    for (const std::size_t count : {0UL, 1UL, 3UL, 4UL, 5UL, 255UL, 4096UL}) {
        std::vector<std::uint64_t> idx(count);
        for (auto& i : idx) i = rng.uniform_index(array.size());
        std::vector<std::uint64_t> scalar_out(count, 0xAA);
        std::vector<std::uint64_t> avx2_out(count, 0xBB);
        {
            const DispatchGuard guard(SimdLevel::kScalar);
            simd::gather_u64(array.data(), idx.data(), count, scalar_out.data());
        }
        {
            const DispatchGuard guard(SimdLevel::kAvx2);
            simd::gather_u64(array.data(), idx.data(), count, avx2_out.data());
        }
        EXPECT_EQ(avx2_out, scalar_out) << "count " << count;
    }
}

TEST(SimdEquivalence, GatherPackedMatchesScalarAtEveryLaneWidth) {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 not available";
    Rng rng(4047);
    // One k per lane width {2, 4, 8, 16, 32 bits}.
    for (const std::uint32_t k : {3U, 13U, 200U, 40000U, 70000U}) {
        const std::size_t n = 8192 + 77;
        PackedOpinionArray array(n, k);
        for (std::size_t i = 0; i < n; ++i) {
            // ~1/8 undecided sentinels mixed in.
            const std::uint64_t draw = rng.uniform_index(8);
            array.set(i, draw == 0
                             ? kUndecided
                             : static_cast<Opinion>(rng.uniform_index(k)));
        }
        const std::size_t count = 2048 + 3;  // odd tail
        std::vector<std::uint64_t> idx(count);
        for (auto& i : idx) i = rng.uniform_index(n);
        std::vector<Opinion> scalar_out(count, 1);
        std::vector<Opinion> avx2_out(count, 2);
        {
            const DispatchGuard guard(SimdLevel::kScalar);
            simd::gather_packed(array.words(), idx.data(), count,
                                array.log2_lane_bits(), scalar_out.data());
        }
        {
            const DispatchGuard guard(SimdLevel::kAvx2);
            simd::gather_packed(array.words(), idx.data(), count,
                                array.log2_lane_bits(), avx2_out.data());
        }
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(avx2_out[i], scalar_out[i]) << "k " << k << " i " << i;
            ASSERT_EQ(scalar_out[i], array.get(idx[i]))
                << "k " << k << " i " << i;
        }
    }
}

TEST(SimdEquivalence, OverrideClampsToDetectionAndRestores) {
    // Requesting AVX2 on a scalar-only machine must clamp, never crash.
    {
        const DispatchGuard guard(SimdLevel::kAvx2);
        EXPECT_EQ(support::active_simd(),
                  avx2_available() ? SimdLevel::kAvx2 : SimdLevel::kScalar);
    }
    {
        const DispatchGuard guard(SimdLevel::kScalar);
        EXPECT_EQ(support::active_simd(), SimdLevel::kScalar);
    }
    // Guard destructors restore env + detection resolution.
    EXPECT_EQ(support::active_simd() <= support::detected_simd(), true);
}

}  // namespace
}  // namespace papc::sync
