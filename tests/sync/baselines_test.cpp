#include "sync/baselines.hpp"

#include <gtest/gtest.h>

#include "opinion/assignment.hpp"
#include "sync/engine.hpp"

namespace papc::sync {
namespace {

struct BaselineCase {
    const char* name;
    int which;  // 0 pull, 1 two-choices, 2 3-majority, 3 undecided
};

std::unique_ptr<SyncDynamics> make_dynamics(int which, const Assignment& a) {
    switch (which) {
        case 0: return std::make_unique<PullVoting>(a);
        case 1: return std::make_unique<TwoChoices>(a);
        case 2: return std::make_unique<ThreeMajority>(a);
        default: return std::make_unique<UndecidedState>(a);
    }
}

class BaselineSuite : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineSuite, ConvergesOnStrongBias) {
    Rng rng(201 + GetParam().which);
    const std::size_t n = 2048;
    const Assignment a = make_biased_plurality(n, 3, 3.0, rng);
    auto dyn = make_dynamics(GetParam().which, a);
    RunOptions opts;
    opts.max_rounds = 5000;
    const SyncResult r = run_to_consensus(*dyn, rng, opts);
    EXPECT_TRUE(r.converged) << dyn->name();
}

TEST_P(BaselineSuite, PopulationConserved) {
    Rng rng(211 + GetParam().which);
    const std::size_t n = 512;
    const Assignment a = make_biased_plurality(n, 4, 2.0, rng);
    auto dyn = make_dynamics(GetParam().which, a);
    for (int i = 0; i < 20; ++i) {
        dyn->step(rng);
        std::uint64_t total = dyn->undecided_count();
        for (Opinion j = 0; j < 4; ++j) total += dyn->opinion_count(j);
        EXPECT_EQ(total, n);
    }
}

TEST_P(BaselineSuite, NameIsNonEmpty) {
    Rng rng(221);
    const Assignment a = make_biased_plurality(64, 2, 1.5, rng);
    auto dyn = make_dynamics(GetParam().which, a);
    EXPECT_FALSE(dyn->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSuite,
    ::testing::Values(BaselineCase{"pull", 0}, BaselineCase{"two_choices", 1},
                      BaselineCase{"three_majority", 2},
                      BaselineCase{"undecided", 3}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TwoChoicesRule, KeepsOpinionOnDisagreement) {
    // Construct a two-node world: each node samples among {0, 1}; when the
    // samples disagree the node must keep its own opinion. With exactly one
    // node per opinion, opinions can only flip when both samples hit the
    // same node — the counts always stay {2,0}, {1,1} or {0,2}.
    Rng rng(230);
    const Assignment a = make_from_counts({1, 1}, rng);
    TwoChoices dyn(a);
    for (int i = 0; i < 50; ++i) {
        dyn.step(rng);
        EXPECT_EQ(dyn.opinion_count(0) + dyn.opinion_count(1), 2U);
    }
}

TEST(ThreeMajorityRule, MajorityOfThreeWinsFastOnHugeBias) {
    Rng rng(231);
    const Assignment a = make_from_counts({1900, 100}, rng);
    ThreeMajority dyn(a);
    RunOptions opts;
    opts.max_rounds = 200;
    const SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_LT(r.steps, 30U);
}

TEST(ThreeMajorityRule, SlowerWithManyOpinions) {
    // Θ(k log n): with k = 32 the run takes substantially longer than k = 2
    // at equal n and bias structure.
    Rng rng(232);
    const std::size_t n = 4096;
    const Assignment small_k = make_biased_plurality(n, 2, 2.0, rng);
    const Assignment large_k = make_biased_plurality(n, 32, 2.0, rng);
    ThreeMajority a(small_k);
    ThreeMajority b(large_k);
    RunOptions opts;
    opts.max_rounds = 20000;
    Rng ra(233);
    Rng rb(234);
    const SyncResult res_a = run_to_consensus(a, ra, opts);
    const SyncResult res_b = run_to_consensus(b, rb, opts);
    ASSERT_TRUE(res_a.converged);
    ASSERT_TRUE(res_b.converged);
    EXPECT_GT(res_b.steps, res_a.steps);
}

TEST(UndecidedStateRule, UndecidedNodesAppearOnConflict) {
    Rng rng(235);
    const Assignment a = make_from_counts({500, 500}, rng);
    UndecidedState dyn(a);
    dyn.step(rng);
    EXPECT_GT(dyn.undecided_count(), 0U);
}

TEST(UndecidedStateRule, MonochromaticStaysMonochromatic) {
    Rng rng(236);
    const Assignment a = make_from_counts({256}, rng);
    UndecidedState dyn(a);
    for (int i = 0; i < 10; ++i) dyn.step(rng);
    EXPECT_EQ(dyn.opinion_count(0), 256U);
    EXPECT_EQ(dyn.undecided_count(), 0U);
}

TEST(PullVotingRule, WinProbabilityTracksInitialShare) {
    // [HP01]: pull voting preserves the initial share in expectation; with
    // an 80/20 split opinion 0 should win most runs.
    int wins = 0;
    for (int rep = 0; rep < 20; ++rep) {
        Rng rng(derive_seed(241, rep));
        const Assignment a = make_from_counts({160, 40}, rng);
        PullVoting dyn(a);
        RunOptions opts;
        opts.max_rounds = 5000;
        const SyncResult r = run_to_consensus(dyn, rng, opts);
        if (r.converged && r.winner == 0) ++wins;
    }
    EXPECT_GE(wins, 13);
}

}  // namespace
}  // namespace papc::sync
