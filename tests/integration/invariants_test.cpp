#include <gtest/gtest.h>

#include <cmath>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

namespace papc {
namespace {

// DESIGN.md §6 invariants, checked over full runs. The §3.2 invariants for
// the single-leader protocol are partly enforced inside the simulation via
// PAPC_CHECK (node gen <= leader gen); here we verify the observable ones.

TEST(Invariants, AsyncNodeGenerationsBoundedByLeaderTrace) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    Rng wrng(11);
    const Assignment a = make_biased_plurality(1500, 3, 2.0, wrng);
    async::SingleLeaderSimulation sim(a, c, 12);
    const async::AsyncResult r = sim.run();
    ASSERT_TRUE(r.converged);
    const Generation leader_final = sim.leader().gen();
    for (NodeId v = 0; v < 1500; ++v) {
        EXPECT_LE(sim.node(v).gen, leader_final);
    }
}

TEST(Invariants, AsyncCensusMatchesNodeStates) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    Rng wrng(13);
    const Assignment a = make_biased_plurality(900, 4, 2.0, wrng);
    async::SingleLeaderSimulation sim(a, c, 14);
    (void)sim.run();
    // Rebuild an expected census from raw node states and compare counts.
    std::vector<std::uint64_t> counts(4, 0);
    for (NodeId v = 0; v < 900; ++v) ++counts[sim.node(v).col];
    for (Opinion j = 0; j < 4; ++j) {
        std::uint64_t total = 0;
        for (Generation g = 0; g <= sim.census().highest_populated(); ++g) {
            total += sim.census().count(g, j);
        }
        EXPECT_EQ(total, counts[j]) << "opinion " << j;
    }
}

TEST(Invariants, AsyncEveryGenerationBornByTwoChoices) {
    // Each generation in the leader trace must appear with prop == false
    // first (two-choices window precedes propagation for every generation).
    async::AsyncConfig c;
    c.alpha_hint = 1.8;
    c.max_time = 600.0;
    const async::AsyncResult r = async::run_single_leader(2500, 4, 1.8, c, 15);
    ASSERT_TRUE(r.converged);
    Generation seen = 0;
    for (const auto& tr : r.leader_trace) {
        if (tr.gen > seen) {
            EXPECT_FALSE(tr.prop)
                << "generation " << tr.gen << " did not open with two-choices";
            seen = tr.gen;
        }
    }
    EXPECT_GE(seen, 2U);
}

TEST(Invariants, SyncScheduleMatchesObservedBirths) {
    // Property 7 of DESIGN.md: generation birth rounds observed in the run
    // coincide with the schedule's t_i values (whp; fixed seed).
    const std::size_t n = 1 << 14;
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 4;
    sp.alpha = 2.0;
    const sync::Schedule schedule{sp};
    Rng rng(16);
    const Assignment a = make_biased_plurality(n, 4, 2.0, rng);
    sync::Algorithm1 alg(a, schedule);
    sync::RunOptions opts;
    opts.max_rounds = 400;
    (void)run_to_consensus(alg, rng, opts);
    for (const auto& birth : alg.births()) {
        if (birth.generation == 0) continue;
        if (birth.generation > schedule.total_generations()) break;
        EXPECT_EQ(birth.round, schedule.birth_step(birth.generation))
            << "generation " << birth.generation;
    }
}

TEST(Invariants, SyncBiasSquaringWithinErrorBand) {
    // Proposition 8 shape: at the birth of generation i the bias is at
    // least (α(1-δ))^(2^i) for a small δ. We check the weaker, robust form
    // α_i >= α_{i-1}^1.5 while both are finite and the generation holds at
    // least 1000 nodes.
    const std::size_t n = 1 << 16;
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 2;
    sp.alpha = 1.5;
    Rng rng(17);
    const Assignment a = make_biased_plurality(n, 2, 1.5, rng);
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 400;
    (void)run_to_consensus(alg, rng, opts);
    const auto& births = alg.births();
    for (std::size_t i = 1; i + 1 < births.size(); ++i) {
        const double prev = births[i].alpha;
        const double cur = births[i + 1].alpha;
        if (!std::isfinite(prev) || !std::isfinite(cur)) break;
        if (births[i + 1].size < 1000) continue;
        EXPECT_GE(cur, std::pow(prev, 1.5) * 0.8)
            << "generation " << i + 1 << ": " << prev << " -> " << cur;
    }
}

TEST(Invariants, AsyncExchangeAccounting) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    const async::AsyncResult r = async::run_single_leader(1200, 3, 2.0, c, 18);
    ASSERT_TRUE(r.converged);
    // Every exchange is classified into exactly one of the four outcomes;
    // promotions + refreshes cannot exceed total exchanges.
    EXPECT_LE(r.two_choices_count + r.propagation_count + r.refresh_count,
              r.exchanges);
}

}  // namespace
}  // namespace papc
