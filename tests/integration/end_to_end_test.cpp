#include <gtest/gtest.h>

#include "analysis/theory.hpp"
#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace papc {
namespace {

// All three protocol families (synchronous, async single-leader, async
// multi-leader) must pick the initial plurality on the same canonical
// workload family across a parameter sweep.

struct SweepCase {
    std::size_t n;
    std::uint32_t k;
    double alpha;
};

class ProtocolSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweep, SynchronousAlgorithm1Wins) {
    const auto& p = GetParam();
    Rng rng(derive_seed(1001, p.n * 131 + p.k));
    const Assignment a = make_biased_plurality(p.n, p.k, p.alpha, rng);
    sync::ScheduleParams sp;
    sp.n = p.n;
    sp.k = p.k;
    sp.alpha = p.alpha;
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 600;
    const sync::SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST_P(ProtocolSweep, AsyncSingleLeaderWins) {
    const auto& p = GetParam();
    async::AsyncConfig c;
    c.alpha_hint = p.alpha;
    c.max_time = 800.0;
    c.record_series = false;
    const async::AsyncResult r = async::run_single_leader(
        p.n, p.k, p.alpha, c, derive_seed(1002, p.n * 17 + p.k));
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

TEST_P(ProtocolSweep, AsyncMultiLeaderWins) {
    const auto& p = GetParam();
    cluster::ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 64.0;
    c.alpha_hint = p.alpha;
    c.max_time = 1500.0;
    c.record_series = false;
    const cluster::MultiLeaderResult r = cluster::run_multi_leader(
        p.n, p.k, p.alpha, c, derive_seed(1003, p.n * 31 + p.k));
    ASSERT_TRUE(r.clustering.completed);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ProtocolSweep,
    ::testing::Values(SweepCase{2048, 2, 2.0}, SweepCase{2048, 4, 2.0},
                      SweepCase{4096, 8, 1.6}, SweepCase{4096, 2, 1.3}),
    [](const auto& info) {
        return "n" + std::to_string(info.param.n) + "_k" +
               std::to_string(info.param.k) + "_a" +
               std::to_string(static_cast<int>(info.param.alpha * 10));
    });

TEST(EndToEnd, AsyncBeatsNothingButFinishesWithinTheoryShapedTime) {
    // The measured ε-convergence time should be within a generous constant
    // multiple of the Theorem 13 shape for this configuration.
    const std::size_t n = 4096;
    const std::uint32_t k = 4;
    const double alpha = 2.0;
    async::AsyncConfig c;
    c.alpha_hint = alpha;
    c.max_time = 800.0;
    c.record_series = false;
    const async::AsyncResult r = async::run_single_leader(n, k, alpha, c, 555);
    ASSERT_TRUE(r.converged);
    const double shape = analysis::theorem1_runtime_shape(n, k, alpha);
    // steps_per_unit converts time units to steps; allow a wide constant.
    EXPECT_LT(r.epsilon_time, 40.0 * shape * r.steps_per_unit);
}

TEST(EndToEnd, ZipfWorkloadAllProtocols) {
    const std::size_t n = 4096;
    Rng rng(777);
    const Assignment a = make_zipf(n, 6, 1.0, rng);
    // Zipf(1.0) with k = 6 gives alpha = 2 between the top opinions.
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 6;
    sp.alpha = 1.8;
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 600;
    const sync::SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(EndToEnd, UndecidedBaselineAgreesWithAlgorithm1OnEasyInput) {
    const std::size_t n = 2048;
    Rng rng(888);
    const Assignment a = make_biased_plurality(n, 3, 3.0, rng);
    sync::UndecidedState usd(a);
    sync::RunOptions opts;
    opts.max_rounds = 3000;
    const sync::SyncResult r = run_to_consensus(usd, rng, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

}  // namespace
}  // namespace papc
