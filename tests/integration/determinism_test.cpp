#include <gtest/gtest.h>

#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

namespace papc {
namespace {

// Bit-level reproducibility across runs with the same seed is a stated
// design goal (DESIGN.md §5); these tests pin it for every engine.

TEST(Determinism, WorkloadGeneration) {
    Rng a(1);
    Rng b(1);
    const Assignment wa = make_biased_plurality(5000, 6, 1.7, a);
    const Assignment wb = make_biased_plurality(5000, 6, 1.7, b);
    EXPECT_EQ(wa.opinions, wb.opinions);
}

TEST(Determinism, SynchronousRunRoundByRound) {
    sync::ScheduleParams sp;
    sp.n = 1024;
    sp.k = 4;
    sp.alpha = 1.5;
    Rng wa(2);
    Rng wb(2);
    const Assignment assign_a = make_biased_plurality(1024, 4, 1.5, wa);
    const Assignment assign_b = make_biased_plurality(1024, 4, 1.5, wb);
    sync::Algorithm1 a(assign_a, sync::Schedule(sp));
    sync::Algorithm1 b(assign_b, sync::Schedule(sp));
    Rng ra(3);
    Rng rb(3);
    for (int round = 0; round < 25; ++round) {
        a.step(ra);
        b.step(rb);
        for (NodeId v = 0; v < 1024; v += 37) {
            ASSERT_EQ(a.color(v), b.color(v)) << "round " << round;
            ASSERT_EQ(a.generation(v), b.generation(v)) << "round " << round;
        }
    }
}

TEST(Determinism, AsyncSingleLeaderFullTrace) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    const async::AsyncResult a = async::run_single_leader(600, 3, 2.0, c, 42);
    const async::AsyncResult b = async::run_single_leader(600, 3, 2.0, c, 42);
    ASSERT_EQ(a.leader_trace.size(), b.leader_trace.size());
    for (std::size_t i = 0; i < a.leader_trace.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.leader_trace[i].time, b.leader_trace[i].time);
        EXPECT_EQ(a.leader_trace[i].gen, b.leader_trace[i].gen);
        EXPECT_EQ(a.leader_trace[i].prop, b.leader_trace[i].prop);
    }
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.refresh_count, b.refresh_count);
}

TEST(Determinism, MultiLeaderEndState) {
    cluster::ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 32.0;
    c.alpha_hint = 2.0;
    c.max_time = 1000.0;
    const cluster::MultiLeaderResult a =
        cluster::run_multi_leader(1024, 2, 2.0, c, 5);
    const cluster::MultiLeaderResult b =
        cluster::run_multi_leader(1024, 2, 2.0, c, 5);
    EXPECT_EQ(a.clustering.cluster_of, b.clustering.cluster_of);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.two_choices_count, b.two_choices_count);
    EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
}

}  // namespace
}  // namespace papc
