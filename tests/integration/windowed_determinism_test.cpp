#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "async/sequential_simulation.hpp"
#include "async/simulation.hpp"
#include "async/validated_simulation.hpp"
#include "cluster/simulation.hpp"
#include "core/run_result.hpp"

namespace papc {
namespace {

// The windowed executor's headline contract: a fixed-seed run is a pure
// function of (seed, shard count, window width) — NEVER the thread count.
// These tests run every event-driven engine family at threads {1, 2, 8}
// and require bit-identical results (core::serialize round-trips doubles
// as hex floats, so string equality is bit equality).

constexpr std::size_t kThreadSweep[] = {1, 2, 8};

/// Bit-exact double rendering (hex float) for fingerprints.
std::string hex(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

async::AsyncConfig async_config(std::size_t threads) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 400.0;
    c.threads = threads;
    return c;
}

/// Engine-specific extras that serialize() does not cover, folded into one
/// comparable string alongside the exact base-result serialization.
std::string fingerprint(const async::AsyncResult& r) {
    std::string s = core::serialize(r);
    s += " ticks " + std::to_string(r.ticks);
    s += " good " + std::to_string(r.good_ticks);
    s += " exch " + std::to_string(r.exchanges);
    s += " two " + std::to_string(r.two_choices_count);
    s += " prop " + std::to_string(r.propagation_count);
    s += " refresh " + std::to_string(r.refresh_count);
    s += " sig " + std::to_string(r.signals_delivered);
    s += " chan " + std::to_string(r.channels_opened);
    s += " ev " + std::to_string(r.events_processed);
    s += " win " + std::to_string(r.windows);
    s += " strag " + std::to_string(r.window_stragglers);
    s += " gen " + std::to_string(r.final_top_generation);
    s += " trace " + std::to_string(r.leader_trace.size());
    for (const auto& t : r.leader_trace) {
        s += " " + std::to_string(t.gen) + "@" + hex(t.time);
    }
    return s;
}

std::string fingerprint(const cluster::MultiLeaderResult& r) {
    std::string s = core::serialize(r);
    s += " ticks " + std::to_string(r.ticks);
    s += " exch " + std::to_string(r.exchanges);
    s += " two " + std::to_string(r.two_choices_count);
    s += " prop " + std::to_string(r.propagation_count);
    s += " adopt " + std::to_string(r.finished_adoptions);
    s += " sig " + std::to_string(r.signals_delivered);
    s += " ev " + std::to_string(r.events_processed);
    s += " win " + std::to_string(r.windows);
    s += " strag " + std::to_string(r.window_stragglers);
    s += " active " + std::to_string(r.clustering.num_active);
    for (const std::int32_t c : r.clustering.cluster_of) {
        s += "," + std::to_string(c);
    }
    return s;
}

TEST(WindowedDeterminism, AsyncSingleLeaderThreadSweep) {
    const std::string baseline = fingerprint(
        async::run_single_leader(600, 3, 2.0, async_config(1), 97));
    for (const std::size_t threads : kThreadSweep) {
        EXPECT_EQ(baseline,
                  fingerprint(async::run_single_leader(
                      600, 3, 2.0, async_config(threads), 97)))
            << "threads=" << threads;
    }
}

TEST(WindowedDeterminism, ValidatedSingleLeaderThreadSweep) {
    const auto run = [](std::size_t threads) {
        const async::ValidatedResult r = async::run_validated_single_leader(
            500, 3, 2.0, async_config(threads), 2.0, 31);
        return fingerprint(r.base) + " commits " + std::to_string(r.commits) +
               " aborts " + std::to_string(r.aborts);
    };
    const std::string baseline = run(1);
    for (const std::size_t threads : kThreadSweep) {
        EXPECT_EQ(baseline, run(threads)) << "threads=" << threads;
    }
}

TEST(WindowedDeterminism, SequentialSingleLeaderThreadSweep) {
    // The sequential engine is single-shard by construction; a threads
    // request must be a no-op on results, not an error.
    const auto run = [](std::size_t threads) {
        async::AsyncConfig c = async_config(threads);
        c.max_time = 150.0;
        return fingerprint(
            async::run_sequential_single_leader(500, 3, 2.0, c, 53));
    };
    const std::string baseline = run(1);
    for (const std::size_t threads : kThreadSweep) {
        EXPECT_EQ(baseline, run(threads)) << "threads=" << threads;
    }
}

TEST(WindowedDeterminism, MultiLeaderThreadSweep) {
    const auto run = [](std::size_t threads) {
        cluster::ClusterConfig c;
        c.size_floor = 16;
        c.leader_probability = 1.0 / 32.0;
        c.alpha_hint = 2.0;
        c.max_time = 800.0;
        c.threads = threads;
        return fingerprint(cluster::run_multi_leader(1024, 2, 2.0, c, 71));
    };
    const std::string baseline = run(1);
    for (const std::size_t threads : kThreadSweep) {
        EXPECT_EQ(baseline, run(threads)) << "threads=" << threads;
    }
}

TEST(WindowedDeterminism, WindowWidthIsPartOfTheTrajectory) {
    // The flip side of the contract: unlike threads, the window width IS
    // allowed to change the trajectory (different snapshot boundaries).
    // Pin that both widths still converge to the same winner — the
    // physics is invariant even when the tape is not.
    async::AsyncConfig narrow = async_config(1);
    narrow.window = 0.125;
    async::AsyncConfig wide = async_config(1);
    wide.window = 0.5;
    const async::AsyncResult a =
        async::run_single_leader(600, 3, 2.0, narrow, 97);
    const async::AsyncResult b =
        async::run_single_leader(600, 3, 2.0, wide, 97);
    EXPECT_TRUE(a.converged);
    EXPECT_TRUE(b.converged);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_GE(a.windows, b.windows);  // narrower windows => more of them
}

}  // namespace
}  // namespace papc
