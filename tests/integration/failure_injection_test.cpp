#include <gtest/gtest.h>

#include "async/simulation.hpp"
#include "cluster/clustering.hpp"
#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

namespace papc {
namespace {

// Adversarial / degenerate configurations: the engines must terminate
// cleanly (converged or time-capped), never crash, and keep their
// invariants, even when the paper's preconditions are violated.

TEST(FailureInjection, ExactTieStillTerminates) {
    // α = 1: Theorem 1's precondition is violated; the protocol must
    // still terminate cleanly. Symmetry CAN fail to break — once the
    // schedule's finitely many two-choices steps are spent, a still-split
    // population freezes (propagation alone cannot cross generations) —
    // so this pins a seed whose trajectory does break the tie.
    Rng rng(2);
    const std::size_t n = 2048;
    const Assignment a = make_uniform(n, 4, rng);
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 4;
    sp.alpha = 1.05;  // schedule hint; the actual workload is tied
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 2000;
    const sync::SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);  // some opinion wins
    EXPECT_LT(r.winner, 4U);
}

TEST(FailureInjection, AsyncTieTerminatesOrCapsCleanly) {
    async::AsyncConfig c;
    c.alpha_hint = 1.05;
    c.max_time = 400.0;
    c.record_series = false;
    Rng wrng(2);
    const Assignment a = make_uniform(1000, 2, wrng);
    async::SingleLeaderSimulation sim(a, c, 3);
    const async::AsyncResult r = sim.run();
    // Either full convergence (symmetry broken) or a clean cap; never a
    // crash, and the invariants hold either way.
    EXPECT_LE(r.end_time, c.max_time + 1.0);
    for (NodeId v = 0; v < 1000; ++v) {
        EXPECT_LE(sim.node(v).gen, sim.leader().gen());
    }
}

TEST(FailureInjection, HeavyTailLatencyStillConverges) {
    // Weibull(0.4): extremely heavy tail — single channel establishments
    // can take hundreds of steps. Slow but must stay correct.
    Rng wrng(4);
    const Assignment a = make_biased_plurality(800, 2, 2.5, wrng);
    async::AsyncConfig c;
    c.alpha_hint = 2.5;
    c.max_time = 4000.0;
    c.record_series = false;
    async::SingleLeaderSimulation sim(
        a, c, std::make_unique<sim::WeibullLatency>(0.4, 0.3), 5);
    const async::AsyncResult r = sim.run();
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

TEST(FailureInjection, SingleOpinionIsInstantlyConverged) {
    Rng wrng(6);
    const Assignment a = make_biased_plurality(500, 1, 1.0, wrng);
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 50.0;
    const async::AsyncResult r = async::run_single_leader(500, 1, 1.0, c, 7);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_LE(r.consensus_time, 1.0);
    (void)a;
}

TEST(FailureInjection, TinyPopulationAsync) {
    async::AsyncConfig c;
    c.alpha_hint = 3.0;
    c.max_time = 500.0;
    const async::AsyncResult r = async::run_single_leader(8, 2, 3.0, c, 8);
    EXPECT_TRUE(r.converged);  // n = 8 must still terminate
}

TEST(FailureInjection, ClusteringWithNoLeadersFailsGracefully) {
    cluster::ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1e-9;  // effectively zero
    c.clustering_max_time = 20.0;
    Rng rng(9);
    const cluster::ClusteringResult r = cluster::run_clustering(256, c, rng);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.num_active, 0U);
}

TEST(FailureInjection, ClusteringWithAbsurdFloorTimesOut) {
    cluster::ClusterConfig c;
    c.size_floor = 100000;  // larger than n: no cluster can qualify
    c.leader_probability = 0.01;
    c.clustering_max_time = 20.0;
    Rng rng(10);
    const cluster::ClusteringResult r = cluster::run_clustering(1024, c, rng);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.num_active, 0U);
}

TEST(FailureInjection, ClusteringEveryoneALeader) {
    cluster::ClusterConfig c;
    c.size_floor = 2;
    c.leader_probability = 0.9;
    c.clustering_max_time = 200.0;
    Rng rng(11);
    const cluster::ClusteringResult r = cluster::run_clustering(512, c, rng);
    // Degenerate but legal: most clusters are singletons below the floor;
    // the run must terminate without crashing either way.
    EXPECT_LE(r.elapsed, 200.5);
}

TEST(FailureInjection, MultiLeaderWithPartialClusteringStillDecides) {
    // Small floor + low leader probability: a noticeable passive fraction.
    cluster::ClusterConfig c;
    c.size_floor = 32;
    c.leader_probability = 1.0 / 256.0;
    c.alpha_hint = 2.5;
    c.max_time = 2000.0;
    c.record_series = false;
    const cluster::MultiLeaderResult r =
        cluster::run_multi_leader(2048, 2, 2.5, c, 12);
    if (r.clustering.completed) {
        EXPECT_TRUE(r.converged);
        EXPECT_TRUE(r.plurality_won);
    }
}

TEST(FailureInjection, ScheduleHintBelowActualBiasIsSafe) {
    // The nodes only know a *lower bound* on α (§3.2). Underestimating the
    // bias (hint 1.1 vs actual 3.0) costs extra generations but must not
    // break correctness.
    Rng rng(13);
    const std::size_t n = 2048;
    const Assignment a = make_biased_plurality(n, 4, 3.0, rng);
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 4;
    sp.alpha = 1.1;
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 2000;
    const sync::SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(FailureInjection, ZeroLatencyChannels) {
    // Constant(0): channels are instant; the protocol degenerates towards
    // the pure Poisson sequential model and must still work.
    Rng wrng(14);
    const Assignment a = make_biased_plurality(1000, 3, 2.0, wrng);
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    async::SingleLeaderSimulation sim(
        a, c, std::make_unique<sim::ConstantLatency>(0.0), 15);
    const async::AsyncResult r = sim.run();
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

}  // namespace
}  // namespace papc
