#include <gtest/gtest.h>

#include "async/sequential_simulation.hpp"
#include "async/simulation.hpp"
#include "async/validated_simulation.hpp"
#include "cluster/broadcast.hpp"
#include "cluster/simulation.hpp"

namespace papc {
namespace {

// The scheduler-queue subsystem guarantees that every QueueKind pops in
// identical (time, seq) order, so a fixed-seed run must produce identical
// results whichever queue backs it. These tests pin that engine-level
// contract for every discrete-event consumer.

async::AsyncConfig async_config(sim::QueueKind kind) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    c.queue_kind = kind;
    return c;
}

TEST(QueueEquivalence, AsyncSingleLeaderIdenticalRuns) {
    const async::AsyncResult heap = async::run_single_leader(
        600, 3, 2.0, async_config(sim::QueueKind::kBinaryHeap), 42);
    for (const sim::QueueKind kind :
         {sim::QueueKind::kCalendar, sim::QueueKind::kLadder}) {
        const async::AsyncResult other =
            async::run_single_leader(600, 3, 2.0, async_config(kind), 42);

        EXPECT_EQ(heap.ticks, other.ticks);
        EXPECT_EQ(heap.good_ticks, other.good_ticks);
        EXPECT_EQ(heap.exchanges, other.exchanges);
        EXPECT_EQ(heap.two_choices_count, other.two_choices_count);
        EXPECT_EQ(heap.propagation_count, other.propagation_count);
        EXPECT_EQ(heap.refresh_count, other.refresh_count);
        EXPECT_EQ(heap.signals_delivered, other.signals_delivered);
        EXPECT_EQ(heap.steps, other.steps);
        EXPECT_EQ(heap.events_processed, other.events_processed);
        EXPECT_EQ(heap.window_stragglers, other.window_stragglers);
        EXPECT_EQ(heap.winner, other.winner);
        EXPECT_DOUBLE_EQ(heap.consensus_time, other.consensus_time);
        EXPECT_DOUBLE_EQ(heap.end_time, other.end_time);

        ASSERT_EQ(heap.leader_trace.size(), other.leader_trace.size());
        for (std::size_t i = 0; i < heap.leader_trace.size(); ++i) {
            EXPECT_DOUBLE_EQ(heap.leader_trace[i].time,
                             other.leader_trace[i].time);
            EXPECT_EQ(heap.leader_trace[i].gen, other.leader_trace[i].gen);
            EXPECT_EQ(heap.leader_trace[i].prop, other.leader_trace[i].prop);
        }
    }
}

TEST(QueueEquivalence, ValidatedSingleLeaderIdenticalRuns) {
    const async::ValidatedResult heap = async::run_validated_single_leader(
        800, 3, 2.0, async_config(sim::QueueKind::kBinaryHeap), 2.0, 7);
    for (const sim::QueueKind kind :
         {sim::QueueKind::kCalendar, sim::QueueKind::kLadder}) {
        const async::ValidatedResult other = async::run_validated_single_leader(
            800, 3, 2.0, async_config(kind), 2.0, 7);

        EXPECT_EQ(heap.commits, other.commits);
        EXPECT_EQ(heap.aborts, other.aborts);
        EXPECT_EQ(heap.base.ticks, other.base.ticks);
        EXPECT_EQ(heap.base.exchanges, other.base.exchanges);
        EXPECT_EQ(heap.base.steps, other.base.steps);
        EXPECT_EQ(heap.base.events_processed, other.base.events_processed);
        EXPECT_EQ(heap.base.winner, other.base.winner);
        EXPECT_DOUBLE_EQ(heap.base.consensus_time, other.base.consensus_time);
        EXPECT_DOUBLE_EQ(heap.base.end_time, other.base.end_time);
    }
}

TEST(QueueEquivalence, SequentialSingleLeaderIdenticalRuns) {
    async::AsyncConfig heap_cfg = async_config(sim::QueueKind::kBinaryHeap);
    heap_cfg.max_time = 200.0;
    const async::AsyncResult heap =
        async::run_sequential_single_leader(700, 3, 2.0, heap_cfg, 11);
    for (const sim::QueueKind kind :
         {sim::QueueKind::kCalendar, sim::QueueKind::kLadder}) {
        async::AsyncConfig other_cfg = async_config(kind);
        other_cfg.max_time = 200.0;
        const async::AsyncResult other =
            async::run_sequential_single_leader(700, 3, 2.0, other_cfg, 11);

        EXPECT_EQ(heap.ticks, other.ticks);
        EXPECT_EQ(heap.exchanges, other.exchanges);
        EXPECT_EQ(heap.steps, other.steps);
        EXPECT_EQ(heap.events_processed, other.events_processed);
        EXPECT_EQ(heap.winner, other.winner);
        EXPECT_DOUBLE_EQ(heap.consensus_time, other.consensus_time);
        EXPECT_DOUBLE_EQ(heap.end_time, other.end_time);
    }
}

cluster::ClusterConfig cluster_config(sim::QueueKind kind) {
    cluster::ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 32.0;
    c.alpha_hint = 2.0;
    c.max_time = 1000.0;
    c.queue_kind = kind;
    return c;
}

TEST(QueueEquivalence, MultiLeaderIdenticalRuns) {
    // Covers both event loops behind ClusterConfig::queue_kind: the
    // clustering phase and the consensus phase.
    const cluster::MultiLeaderResult heap = cluster::run_multi_leader(
        1024, 2, 2.0, cluster_config(sim::QueueKind::kBinaryHeap), 5);
    for (const sim::QueueKind kind :
         {sim::QueueKind::kCalendar, sim::QueueKind::kLadder}) {
        const cluster::MultiLeaderResult other =
            cluster::run_multi_leader(1024, 2, 2.0, cluster_config(kind), 5);

        EXPECT_EQ(heap.clustering.cluster_of, other.clustering.cluster_of);
        EXPECT_EQ(heap.clustering.num_active, other.clustering.num_active);
        EXPECT_DOUBLE_EQ(heap.clustering_time, other.clustering_time);
        EXPECT_EQ(heap.ticks, other.ticks);
        EXPECT_EQ(heap.exchanges, other.exchanges);
        EXPECT_EQ(heap.two_choices_count, other.two_choices_count);
        EXPECT_EQ(heap.propagation_count, other.propagation_count);
        EXPECT_EQ(heap.finished_adoptions, other.finished_adoptions);
        EXPECT_EQ(heap.signals_delivered, other.signals_delivered);
        EXPECT_EQ(heap.events_processed, other.events_processed);
        EXPECT_EQ(heap.winner, other.winner);
        EXPECT_DOUBLE_EQ(heap.end_time, other.end_time);
        EXPECT_DOUBLE_EQ(heap.finished_fraction, other.finished_fraction);
    }
}

TEST(QueueEquivalence, BroadcastIdenticalRuns) {
    cluster::ClusterConfig config = cluster_config(sim::QueueKind::kBinaryHeap);
    Rng clustering_rng(9);
    const cluster::ClusteringResult clustering =
        cluster::run_clustering(1024, config, clustering_rng);
    ASSERT_GT(clustering.clusters.size(), 0U);

    Rng heap_rng(21);
    Rng calendar_rng(21);
    const cluster::BroadcastResult heap =
        cluster::run_broadcast(clustering, 0, 1.0, 200.0, heap_rng,
                               sim::QueueKind::kBinaryHeap);
    const cluster::BroadcastResult calendar =
        cluster::run_broadcast(clustering, 0, 1.0, 200.0, calendar_rng,
                               sim::QueueKind::kCalendar);

    EXPECT_EQ(heap.completed, calendar.completed);
    EXPECT_EQ(heap.informed, calendar.informed);
    EXPECT_DOUBLE_EQ(heap.time_to_all, calendar.time_to_all);
    EXPECT_DOUBLE_EQ(heap.mean_inform_time, calendar.mean_inform_time);
}

}  // namespace
}  // namespace papc
