#include <gtest/gtest.h>

#include "async/simulation.hpp"
#include "core/run_result.hpp"
#include "opinion/assignment.hpp"
#include "population/three_state.hpp"
#include "population/scheduler.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

// Every engine family drives its loop through core::run and must report
// identical RunResult semantics on its own time axis:
//   - epsilon_time <= consensus_time <= end_time (when detected),
//   - winner equals the dominant opinion at convergence,
//   - a plurality win implies the ε-threshold was crossed,
//   - the recorded series is monotone in time,
//   - tightening ε never moves epsilon_time earlier.
// These are pinned here on one fixed seed per family so a future engine
// port cannot silently drift.

namespace papc {
namespace {

void expect_unified_semantics(const core::RunResult& r, Opinion plurality) {
    EXPECT_TRUE(core::consistent(r));
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_EQ(r.winner, plurality);
    EXPECT_GE(r.epsilon_time, 0.0);
    EXPECT_GE(r.consensus_time, r.epsilon_time);
    EXPECT_GE(r.end_time, r.consensus_time);
    EXPECT_GT(r.steps, 0U);
    // The recorded plurality series ends at full support.
    ASSERT_GT(r.plurality_fraction.size(), 0U);
    EXPECT_DOUBLE_EQ(
        r.plurality_fraction[r.plurality_fraction.size() - 1].value, 1.0);
}

TEST(CrossEngine, SyncReportsUnifiedSemantics) {
    Rng workload(101);
    // Opinion 0 dominates 700 : 300 — two-choices converges to it whp.
    const Assignment a = make_from_counts({700, 300}, workload);
    sync::TwoChoices dynamics(a);
    Rng rng(7);
    sync::RunOptions options;
    options.max_rounds = 20000;
    options.record_every = 1;
    const sync::SyncResult r = run_to_consensus(dynamics, rng, options);
    expect_unified_semantics(r, 0);
    // Sync time axis: rounds — end_time counts the driven steps.
    EXPECT_DOUBLE_EQ(r.end_time, static_cast<double>(r.steps));
}

TEST(CrossEngine, PopulationReportsUnifiedSemantics) {
    population::ThreeStateMajority protocol(700, 300);
    Rng rng(8);
    population::PopulationRunOptions options;
    options.record_every = 100;
    const population::PopulationResult r =
        run_population(protocol, rng, options);
    expect_unified_semantics(r, 0);
    // Population time axis: parallel time = interactions / n.
    EXPECT_DOUBLE_EQ(r.end_time, static_cast<double>(r.steps) / 1000.0);
}

TEST(CrossEngine, AsyncReportsUnifiedSemantics) {
    async::AsyncConfig config;
    config.alpha_hint = 2.0;
    config.max_time = 600.0;
    const async::AsyncResult r = async::run_single_leader(600, 3, 2.0, config, 9);
    // run_single_leader builds a workload whose plurality is opinion 0.
    expect_unified_semantics(r, r.winner);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_GT(r.end_time, 0.0);
}

TEST(CrossEngine, EpsilonTimeMonotoneInEpsilonEverywhere) {
    // Sync family.
    double previous = -1.0;
    for (const double epsilon : {0.3, 0.1, 0.02}) {
        Rng workload(101);
        const Assignment a = make_from_counts({700, 300}, workload);
        sync::TwoChoices dynamics(a);
        Rng rng(7);
        sync::RunOptions options;
        options.max_rounds = 20000;
        options.epsilon = epsilon;
        const sync::SyncResult r = run_to_consensus(dynamics, rng, options);
        ASSERT_GE(r.epsilon_time, 0.0);
        EXPECT_GE(r.epsilon_time, previous);
        previous = r.epsilon_time;
    }

    // Async family (same seed, tighter ε detected no earlier).
    previous = -1.0;
    for (const double epsilon : {0.3, 0.1, 0.02}) {
        async::AsyncConfig config;
        config.alpha_hint = 2.0;
        config.max_time = 600.0;
        config.epsilon = epsilon;
        config.record_series = false;
        const async::AsyncResult r =
            async::run_single_leader(600, 3, 2.0, config, 9);
        ASSERT_GE(r.epsilon_time, 0.0);
        EXPECT_GE(r.epsilon_time, previous);
        previous = r.epsilon_time;
    }
}

TEST(CrossEngine, WinnerEqualsDominantWithoutConvergence) {
    // A capped run must still report the currently dominant opinion.
    Rng workload(55);
    const Assignment a = make_from_counts({520, 480}, workload);
    sync::PullVoting dynamics(a);
    Rng rng(3);
    sync::RunOptions options;
    options.max_rounds = 2;  // far too few rounds to converge
    const sync::SyncResult r = run_to_consensus(dynamics, rng, options);
    EXPECT_FALSE(r.converged);
    EXPECT_FALSE(r.plurality_won);
    EXPECT_EQ(r.winner, dynamics.dominant_opinion());
    EXPECT_EQ(r.steps, 2U);
}

}  // namespace
}  // namespace papc
