#include <gtest/gtest.h>

#include "async/simulation.hpp"
#include "cluster/simulation.hpp"

namespace papc {
namespace {

// §4 motivation: the single leader is a single point of failure; the
// decentralized protocol tolerates losing a large fraction of its cluster
// leaders mid-run.

cluster::ClusterConfig multi_config() {
    cluster::ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 64.0;
    c.alpha_hint = 2.0;
    c.max_time = 2000.0;
    c.record_series = false;
    return c;
}

TEST(Resilience, SingleLeaderFrozenEarlyStalls) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 250.0;
    c.record_series = false;
    c.leader_failure_time = 5.0;  // frozen before the protocol finishes
    const async::AsyncResult r = async::run_single_leader(4096, 4, 2.0, c, 1);
    EXPECT_FALSE(r.converged);
    EXPECT_GE(r.end_time, 249.0);  // ran to the cap, stalled
}

TEST(Resilience, SingleLeaderFrozenLateMayStillFinish) {
    // Freezing after the last generation's propagation opened leaves the
    // final pull phase intact: with prop frozen at true the run finishes.
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 600.0;
    c.record_series = false;
    c.leader_failure_time = 90.0;  // typically past the last birth
    const async::AsyncResult r = async::run_single_leader(2048, 2, 3.0, c, 2);
    // Either outcome is legal depending on where the freeze lands; the run
    // must terminate cleanly and never crash.
    EXPECT_LE(r.end_time, 601.0);
}

TEST(Resilience, MultiLeaderSurvivesHalfTheLeaders) {
    cluster::ClusterConfig c = multi_config();
    c.leader_failure_time = 15.0;
    c.leader_failure_fraction = 0.5;
    const cluster::MultiLeaderResult r =
        cluster::run_multi_leader(4096, 4, 2.0, c, 3);
    ASSERT_TRUE(r.clustering.completed);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

TEST(Resilience, MultiLeaderSurvivesNinetyPercentCrash) {
    cluster::ClusterConfig c = multi_config();
    c.leader_failure_time = 15.0;
    c.leader_failure_fraction = 0.9;
    const cluster::MultiLeaderResult r =
        cluster::run_multi_leader(4096, 2, 2.5, c, 4);
    ASSERT_TRUE(r.clustering.completed);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

TEST(Resilience, FailureSlowsButDoesNotCorrupt) {
    cluster::ClusterConfig healthy = multi_config();
    cluster::ClusterConfig damaged = multi_config();
    damaged.leader_failure_time = 10.0;
    damaged.leader_failure_fraction = 0.75;
    const cluster::MultiLeaderResult a =
        cluster::run_multi_leader(4096, 4, 2.0, healthy, 5);
    const cluster::MultiLeaderResult b =
        cluster::run_multi_leader(4096, 4, 2.0, damaged, 5);
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    EXPECT_TRUE(b.plurality_won);
    EXPECT_GE(b.consensus_time, a.consensus_time * 0.5);  // sane ordering
}

TEST(Resilience, ZeroFractionIsNoOp) {
    cluster::ClusterConfig c = multi_config();
    c.leader_failure_time = 10.0;
    c.leader_failure_fraction = 0.0;
    const cluster::MultiLeaderResult with_injection =
        cluster::run_multi_leader(1024, 2, 2.0, c, 6);
    EXPECT_TRUE(with_injection.converged);
    EXPECT_TRUE(with_injection.plurality_won);
}

}  // namespace
}  // namespace papc
