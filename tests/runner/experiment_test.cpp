#include "runner/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace papc::runner {
namespace {

TEST(RunExperiment, AggregatesAllRepetitions) {
    int calls = 0;
    const ExperimentOutcome o = run_experiment(
        [&](std::uint64_t) {
            ++calls;
            return TrialMetrics{{"x", static_cast<double>(calls)}};
        },
        10, 42);
    EXPECT_EQ(calls, 10);
    EXPECT_EQ(o.repetitions, 10U);
    EXPECT_EQ(o.count("x"), 10U);
    EXPECT_DOUBLE_EQ(o.mean("x"), 5.5);
    EXPECT_DOUBLE_EQ(o.median("x"), 5.5);
}

TEST(RunExperiment, SeedsAreDistinctAndDeterministic) {
    std::set<std::uint64_t> seeds1;
    std::set<std::uint64_t> seeds2;
    (void)run_experiment(
        [&](std::uint64_t s) {
            seeds1.insert(s);
            return TrialMetrics{};
        },
        8, 7);
    (void)run_experiment(
        [&](std::uint64_t s) {
            seeds2.insert(s);
            return TrialMetrics{};
        },
        8, 7);
    EXPECT_EQ(seeds1.size(), 8U);
    EXPECT_EQ(seeds1, seeds2);
}

TEST(RunExperiment, MissingMetricsAllowed) {
    const ExperimentOutcome o = run_experiment(
        [](std::uint64_t seed) {
            TrialMetrics m{{"always", 1.0}};
            if (seed % 2 == 0) m["sometimes"] = 2.0;
            return m;
        },
        20, 99);
    EXPECT_EQ(o.count("always"), 20U);
    EXPECT_GT(o.count("sometimes"), 0U);
    EXPECT_LT(o.count("sometimes"), 20U);
    EXPECT_EQ(o.count("never"), 0U);
    EXPECT_DOUBLE_EQ(o.mean("never"), 0.0);
}

TEST(RunExperimentParallel, MatchesSerialOutcome) {
    auto trial = [](std::uint64_t seed) {
        // Deterministic function of the seed only.
        return TrialMetrics{{"v", static_cast<double>(seed % 1000)},
                            {"w", static_cast<double>(seed % 7)}};
    };
    const ExperimentOutcome serial = run_experiment(trial, 40, 11);
    const ExperimentOutcome parallel = run_experiment_parallel(trial, 40, 11, 4);
    ASSERT_EQ(serial.metrics.size(), parallel.metrics.size());
    for (const auto& [name, summary] : serial.metrics) {
        const auto& other = parallel.metrics.at(name);
        EXPECT_EQ(summary.count, other.count) << name;
        EXPECT_DOUBLE_EQ(summary.mean, other.mean) << name;
        EXPECT_DOUBLE_EQ(summary.p50, other.p50) << name;
        EXPECT_DOUBLE_EQ(summary.min, other.min) << name;
        EXPECT_DOUBLE_EQ(summary.max, other.max) << name;
    }
}

TEST(RunExperimentParallel, SingleThreadDegeneratesToSerial) {
    int calls = 0;
    const ExperimentOutcome o = run_experiment_parallel(
        [&](std::uint64_t) {
            ++calls;
            return TrialMetrics{{"x", 1.0}};
        },
        5, 3, 1);
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(o.count("x"), 5U);
}

TEST(RunExperimentParallel, MoreThreadsThanRepsIsSafe) {
    const ExperimentOutcome o = run_experiment_parallel(
        [](std::uint64_t s) {
            return TrialMetrics{{"x", static_cast<double>(s % 5)}};
        },
        3, 9, 16);
    EXPECT_EQ(o.repetitions, 3U);
}

TEST(RunExperiment, SummariesCarryDistributionShape) {
    const ExperimentOutcome o = run_experiment(
        [](std::uint64_t seed) {
            return TrialMetrics{{"v", static_cast<double>(seed % 100)}};
        },
        50, 3);
    const auto& s = o.metrics.at("v");
    EXPECT_EQ(s.count, 50U);
    EXPECT_LE(s.min, s.p50);
    EXPECT_LE(s.p50, s.max);
}

}  // namespace
}  // namespace papc::runner
