#include "runner/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace papc::runner {
namespace {

TEST(Banner, ContainsTitle) {
    std::ostringstream out;
    print_banner(out, "Hello");
    EXPECT_NE(out.str().find("Hello"), std::string::npos);
    EXPECT_NE(out.str().find("="), std::string::npos);
}

TEST(Heading, ContainsTitle) {
    std::ostringstream out;
    print_heading(out, "Sub");
    EXPECT_NE(out.str().find("Sub"), std::string::npos);
}

TEST(Sparkline, EmptySeries) {
    EXPECT_EQ(sparkline(TimeSeries{}), "(empty)");
}

TEST(Sparkline, ShowsRangeEndpoints) {
    TimeSeries ts;
    for (int i = 0; i <= 100; ++i) {
        ts.record(static_cast<double>(i), static_cast<double>(i) / 100.0);
    }
    const std::string line = sparkline(ts, 20);
    EXPECT_NE(line.find("0.00"), std::string::npos);
    EXPECT_NE(line.find("1.00"), std::string::npos);
    EXPECT_NE(line.find("100.0"), std::string::npos);  // final time
}

TEST(Sparkline, ConstantSeriesDoesNotDivideByZero) {
    TimeSeries ts;
    ts.record(0.0, 5.0);
    ts.record(1.0, 5.0);
    ts.record(2.0, 5.0);
    const std::string line = sparkline(ts, 10);
    EXPECT_FALSE(line.empty());
}

}  // namespace
}  // namespace papc::runner
