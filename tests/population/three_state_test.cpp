#include "population/three_state.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"

namespace papc::population {
namespace {

TEST(ThreeState, InitialCounts) {
    const ThreeStateMajority p(60, 30, 10);
    EXPECT_EQ(p.population(), 100U);
    EXPECT_EQ(p.count_a(), 60U);
    EXPECT_EQ(p.count_b(), 30U);
    EXPECT_EQ(p.count_blank(), 10U);
    EXPECT_FALSE(p.converged());
}

TEST(ThreeState, TransitionRules) {
    // Layout: agent 0 = A, agent 1 = B, agent 2 = blank.
    ThreeStateMajority p(1, 1, 1);
    // A initiates with B: responder becomes blank.
    p.interact(0, 1);
    EXPECT_EQ(p.count_b(), 0U);
    EXPECT_EQ(p.count_blank(), 2U);
    // A initiates with blank: responder becomes A.
    p.interact(0, 1);
    EXPECT_EQ(p.count_a(), 2U);
    // Blank initiator changes nothing.
    p.interact(2, 0);
    EXPECT_EQ(p.count_a(), 2U);
    EXPECT_EQ(p.count_blank(), 1U);
}

TEST(ThreeState, ConvergesToMajorityWithClearBias) {
    ThreeStateMajority p(700, 300);
    Rng rng(11);
    const PopulationResult r = run_population(p, rng);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
    // O(n log n) interactions => O(log n) parallel time; generous cap.
    EXPECT_LT(r.end_time, 200.0);
}

TEST(ThreeState, MinorityCanBeB) {
    ThreeStateMajority p(200, 800);
    Rng rng(12);
    const PopulationResult r = run_population(p, rng);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 1U);
}

TEST(ThreeState, CountsAlwaysSumToN) {
    ThreeStateMajority p(50, 40, 10);
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const auto a = static_cast<NodeId>(rng.uniform_index(100));
        auto b = static_cast<NodeId>(rng.uniform_index(99));
        if (b >= a) ++b;
        p.interact(a, b);
        EXPECT_EQ(p.count_a() + p.count_b() + p.count_blank(), 100U);
    }
}

TEST(ThreeState, OutputFractions) {
    const ThreeStateMajority p(25, 75);
    EXPECT_DOUBLE_EQ(p.output_fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(p.output_fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(p.output_fraction(2), 0.0);
}

TEST(ThreeState, MonochromaticIsConverged) {
    const ThreeStateMajority p(10, 0);
    EXPECT_TRUE(p.converged());
    EXPECT_EQ(p.current_winner(), 0U);
}

}  // namespace
}  // namespace papc::population
