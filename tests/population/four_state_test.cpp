#include "population/four_state.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"

namespace papc::population {
namespace {

TEST(FourState, InitialState) {
    const FourStateExactMajority p(6, 4);
    EXPECT_EQ(p.population(), 10U);
    EXPECT_EQ(p.strong_a(), 6U);
    EXPECT_EQ(p.strong_b(), 4U);
    EXPECT_EQ(p.strong_difference(), 2);
    EXPECT_FALSE(p.converged());
}

TEST(FourState, AnnihilationPreservesDifference) {
    FourStateExactMajority p(3, 2);
    // Agents 0..2 strong A, 3..4 strong B.
    p.interact(0, 3);
    EXPECT_EQ(p.strong_a(), 2U);
    EXPECT_EQ(p.strong_b(), 1U);
    EXPECT_EQ(p.strong_difference(), 1);
}

TEST(FourState, StrongConvertsOppositeWeakBothRoles) {
    FourStateExactMajority p(2, 1);
    // 0,1 strong A; 2 strong B. Annihilate 1 and 2 -> weak a, weak b.
    p.interact(1, 2);
    // Strong A (0) converts weak b (2) as initiator.
    p.interact(0, 2);
    EXPECT_DOUBLE_EQ(p.output_fraction(0), 1.0);
    EXPECT_TRUE(p.converged());
}

TEST(FourState, StrongDifferenceInvariantUnderRandomRuns) {
    FourStateExactMajority p(550, 450);
    Rng rng(21);
    const std::int64_t d0 = p.strong_difference();
    for (int i = 0; i < 50000; ++i) {
        const auto a = static_cast<NodeId>(rng.uniform_index(1000));
        auto b = static_cast<NodeId>(rng.uniform_index(999));
        if (b >= a) ++b;
        p.interact(a, b);
        ASSERT_EQ(p.strong_difference(), d0);
    }
}

TEST(FourState, ExactMajorityWithTinyBias) {
    // Additive gap of 2 out of 400: pull-based approximate protocols would
    // often fail here, the 4-state protocol is exact.
    int correct = 0;
    for (int rep = 0; rep < 10; ++rep) {
        FourStateExactMajority p(201, 199);
        Rng rng(derive_seed(22, rep));
        PopulationRunOptions opts;
        opts.max_interactions = 400ULL * 400ULL * 64ULL;
        const PopulationResult r = run_population(p, rng, opts);
        if (r.converged && r.winner == 0) ++correct;
    }
    EXPECT_EQ(correct, 10);
}

TEST(FourState, MinoritySideB) {
    FourStateExactMajority p(100, 300);
    Rng rng(23);
    const PopulationResult r = run_population(p, rng);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 1U);
    EXPECT_DOUBLE_EQ(r.plurality_fraction.empty() ? 1.0 : 1.0, 1.0);
    EXPECT_DOUBLE_EQ(p.output_fraction(1), 1.0);
}

TEST(FourState, TieNeverStabilizes) {
    FourStateExactMajority p(50, 50);
    Rng rng(24);
    PopulationRunOptions opts;
    opts.max_interactions = 100000;
    const PopulationResult r = run_population(p, rng, opts);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(p.strong_difference(), 0);
}

TEST(FourState, WeakPairsDoNotInteract) {
    FourStateExactMajority p(1, 1);
    p.interact(0, 1);  // both weak now
    EXPECT_EQ(p.strong_a(), 0U);
    EXPECT_EQ(p.strong_b(), 0U);
    const double before = p.output_fraction(0);
    p.interact(0, 1);
    p.interact(1, 0);
    EXPECT_DOUBLE_EQ(p.output_fraction(0), before);
}

}  // namespace
}  // namespace papc::population
