#include <gtest/gtest.h>

#include "population/four_state.hpp"
#include "population/k_undecided.hpp"
#include "population/scheduler.hpp"
#include "population/three_state.hpp"

namespace papc::population {
namespace {

TEST(PairPolicies, UniformPairsAreDistinct) {
    ThreeStateMajority protocol(5, 5);
    UniformPairPolicy policy;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const auto [a, b] = policy.next_pair(protocol, 10, rng);
        EXPECT_NE(a, b);
        EXPECT_LT(a, 10U);
        EXPECT_LT(b, 10U);
    }
}

TEST(PairPolicies, RoundRobinCyclesInitiators) {
    ThreeStateMajority protocol(4, 4);
    RoundRobinPairPolicy policy;
    Rng rng(2);
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (NodeId expected = 0; expected < 8; ++expected) {
            const auto [a, b] = policy.next_pair(protocol, 8, rng);
            EXPECT_EQ(a, expected);
            EXPECT_NE(b, a);
        }
    }
}

TEST(PairPolicies, StallingPrefersSameOutputPairs) {
    ThreeStateMajority protocol(50, 50);
    StallingPairPolicy policy(0.99);
    Rng rng(3);
    int same = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const auto [a, b] = policy.next_pair(protocol, 100, rng);
        if (protocol.output_opinion(a) == protocol.output_opinion(b)) ++same;
    }
    // Uniform sampling would give ~50% same-output pairs; the adversary
    // pushes that far up.
    EXPECT_GT(same, trials * 3 / 4);
}

TEST(PairPolicies, ExactMajorityCorrectUnderEveryPolicy) {
    // The 4-state protocol's correctness is scheduler-independent (only
    // speed changes). Check all three policies on a thin majority.
    for (int which = 0; which < 3; ++which) {
        FourStateExactMajority protocol(120, 80);
        Rng rng(derive_seed(4, which));
        PopulationRunOptions opts;
        opts.max_interactions = 200ULL * 200ULL * 64ULL;
        PopulationResult r;
        if (which == 0) {
            UniformPairPolicy policy;
            r = run_population_with_policy(protocol, policy, rng, opts);
        } else if (which == 1) {
            RoundRobinPairPolicy policy;
            r = run_population_with_policy(protocol, policy, rng, opts);
        } else {
            StallingPairPolicy policy(0.8);
            r = run_population_with_policy(protocol, policy, rng, opts);
        }
        EXPECT_TRUE(r.converged) << "policy " << which;
        EXPECT_EQ(r.winner, 0U) << "policy " << which;
    }
}

TEST(PairPolicies, StallingSlowsConvergence) {
    PopulationRunOptions opts;
    opts.max_interactions = 1ULL << 26;

    ThreeStateMajority fair_protocol(700, 300);
    UniformPairPolicy fair;
    Rng r1(5);
    const PopulationResult quick =
        run_population_with_policy(fair_protocol, fair, r1, opts);

    ThreeStateMajority slow_protocol(700, 300);
    StallingPairPolicy adversary(0.9);
    Rng r2(5);
    const PopulationResult delayed =
        run_population_with_policy(slow_protocol, adversary, r2, opts);

    ASSERT_TRUE(quick.converged);
    ASSERT_TRUE(delayed.converged);
    EXPECT_GT(delayed.steps, quick.steps);
    EXPECT_EQ(delayed.winner, 0U);  // fairness preserves correctness
}

TEST(OutputOpinion, ExposedByAllProtocols) {
    const ThreeStateMajority three(1, 1, 1);
    EXPECT_EQ(three.output_opinion(0), 0U);
    EXPECT_EQ(three.output_opinion(1), 1U);
    EXPECT_EQ(three.output_opinion(2), kUndecided);

    const FourStateExactMajority four(1, 1);
    EXPECT_EQ(four.output_opinion(0), 0U);
    EXPECT_EQ(four.output_opinion(1), 1U);

    const KUndecided kund({1, 1}, 1);
    EXPECT_EQ(kund.output_opinion(0), 0U);
    EXPECT_EQ(kund.output_opinion(1), 1U);
    EXPECT_EQ(kund.output_opinion(2), kUndecided);
}

}  // namespace
}  // namespace papc::population
