#include "population/k_undecided.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"

namespace papc::population {
namespace {

TEST(KUndecided, InitialCounts) {
    const KUndecided p({50, 30, 20}, 10);
    EXPECT_EQ(p.population(), 110U);
    EXPECT_EQ(p.num_opinions(), 3U);
    EXPECT_EQ(p.count(0), 50U);
    EXPECT_EQ(p.undecided_count(), 10U);
    EXPECT_FALSE(p.converged());
}

TEST(KUndecided, TransitionRules) {
    // Layout: agent 0 -> opinion 0, agent 1 -> opinion 1, agent 2 undecided.
    KUndecided p({1, 1}, 1);
    // Conflict: responder becomes undecided.
    p.interact(0, 1);
    EXPECT_EQ(p.count(1), 0U);
    EXPECT_EQ(p.undecided_count(), 2U);
    // Recruitment: undecided responder adopts.
    p.interact(0, 2);
    EXPECT_EQ(p.count(0), 2U);
    EXPECT_EQ(p.undecided_count(), 1U);
    // Undecided initiators do nothing.
    p.interact(1, 0);
    EXPECT_EQ(p.count(0), 2U);
}

TEST(KUndecided, ConvergesToPluralityWithBias) {
    KUndecided p({600, 200, 200});
    Rng rng(31);
    const PopulationResult r = run_population(p, rng);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(KUndecided, PopulationConserved) {
    KUndecided p({40, 30, 20, 10});
    Rng rng(32);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<NodeId>(rng.uniform_index(100));
        auto b = static_cast<NodeId>(rng.uniform_index(99));
        if (b >= a) ++b;
        p.interact(a, b);
        std::uint64_t total = p.undecided_count();
        for (Opinion j = 0; j < 4; ++j) total += p.count(j);
        ASSERT_EQ(total, 100U);
    }
}

TEST(KUndecided, MonochromaticAbsorbing) {
    KUndecided p({50});
    Rng rng(33);
    EXPECT_TRUE(p.converged());
    PopulationRunOptions opts;
    opts.max_interactions = 1000;
    const PopulationResult r = run_population(p, rng, opts);
    EXPECT_TRUE(r.converged);
    // Convergence is detected at the first check boundary (n interactions).
    EXPECT_LE(r.steps, 50U);
}

TEST(KUndecided, ManyOpinionsEventuallyDecide) {
    KUndecided p({300, 150, 150, 100, 100, 100, 50, 50});
    Rng rng(34);
    PopulationRunOptions opts;
    opts.max_interactions = 1ULL << 24;
    const PopulationResult r = run_population(p, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(KUndecided, OutputFractions) {
    const KUndecided p({25, 75});
    EXPECT_DOUBLE_EQ(p.output_fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(p.output_fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(p.output_fraction(9), 0.0);
}

}  // namespace
}  // namespace papc::population
