#include "population/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace papc::population {
namespace {

/// Protocol that records interactions and converges after a fixed count.
class RecordingProtocol final : public PopulationProtocol {
public:
    explicit RecordingProtocol(std::size_t n, std::uint64_t converge_after)
        : n_(n), converge_after_(converge_after) {}

    void interact(NodeId initiator, NodeId responder) override {
        EXPECT_NE(initiator, responder);
        EXPECT_LT(initiator, n_);
        EXPECT_LT(responder, n_);
        ++interactions_;
    }
    [[nodiscard]] std::size_t population() const override { return n_; }
    [[nodiscard]] bool converged() const override {
        return interactions_ >= converge_after_;
    }
    [[nodiscard]] Opinion current_winner() const override { return 0; }
    [[nodiscard]] double output_fraction(Opinion) const override {
        return converged() ? 1.0 : 0.5;
    }
    [[nodiscard]] Opinion output_opinion(NodeId v) const override {
        return v % 2;  // arbitrary but stable
    }
    [[nodiscard]] std::string name() const override { return "recording"; }

    std::uint64_t interactions_ = 0;

private:
    std::size_t n_;
    std::uint64_t converge_after_;
};

TEST(RunPopulation, StopsAtConvergenceCheckBoundary) {
    RecordingProtocol p(100, 250);
    Rng rng(1);
    const PopulationResult r = run_population(p, rng);
    EXPECT_TRUE(r.converged);
    // Convergence is checked every n = 100 interactions: detected at 300.
    EXPECT_EQ(r.steps, 300U);
    EXPECT_DOUBLE_EQ(r.end_time, 3.0);
}

TEST(RunPopulation, RespectsInteractionCap) {
    RecordingProtocol p(50, 1000000);
    Rng rng(2);
    PopulationRunOptions opts;
    opts.max_interactions = 500;
    const PopulationResult r = run_population(p, rng, opts);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.steps, 500U);
}

TEST(RunPopulation, PairsAreDistinctAndValid) {
    RecordingProtocol p(10, 100000);
    Rng rng(3);
    PopulationRunOptions opts;
    opts.max_interactions = 20000;
    (void)run_population(p, rng, opts);  // assertions live in interact()
}

TEST(RunPopulation, RecordsSeries) {
    RecordingProtocol p(100, 100000);
    Rng rng(4);
    PopulationRunOptions opts;
    opts.max_interactions = 2000;
    opts.record_every = 500;
    opts.check_every = 500;
    const PopulationResult r = run_population(p, rng, opts);
    EXPECT_GE(r.plurality_fraction.size(), 3U);
}

TEST(RunPopulation, DefaultCapScalesWithNLogN) {
    RecordingProtocol p(64, 1ULL << 62);
    Rng rng(5);
    const PopulationResult r = run_population(p, rng);
    // 64·n·log2(n) = 64·64·6 = 24576.
    EXPECT_EQ(r.steps, 24576U);
}

}  // namespace
}  // namespace papc::population
