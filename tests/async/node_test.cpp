#include "async/node.hpp"

#include <gtest/gtest.h>

namespace papc::async {
namespace {

using Kind = ExchangeDecision::Kind;

NodeState fresh_node(Generation gen = 0, Opinion col = 0,
                     Generation seen_gen = 1, bool seen_prop = false) {
    NodeState v;
    v.gen = gen;
    v.col = col;
    v.seen_gen = seen_gen;
    v.seen_prop = seen_prop;
    return v;
}

TEST(DecideExchange, OutOfSyncOnlyRefreshes) {
    const NodeState v = fresh_node(0, 0, /*seen_gen=*/1, /*seen_prop=*/false);
    // Leader advanced to gen 2 since the node's last contact.
    const ExchangeDecision d =
        decide_exchange(v, 2, false, PeerSample{1, 0}, PeerSample{1, 0});
    EXPECT_EQ(d.kind, Kind::kRefreshOnly);
}

TEST(DecideExchange, OutOfSyncOnPropBit) {
    const NodeState v = fresh_node(0, 0, 1, false);
    const ExchangeDecision d =
        decide_exchange(v, 1, true, PeerSample{0, 0}, PeerSample{0, 0});
    EXPECT_EQ(d.kind, Kind::kRefreshOnly);
}

TEST(DecideExchange, TwoChoicesPromotion) {
    const NodeState v = fresh_node(0, 1, 1, false);
    const ExchangeDecision d =
        decide_exchange(v, 1, false, PeerSample{0, 2}, PeerSample{0, 2});
    EXPECT_EQ(d.kind, Kind::kTwoChoices);
    EXPECT_EQ(d.new_gen, 1U);
    EXPECT_EQ(d.new_col, 2U);
    EXPECT_TRUE(d.send_gen_signal);
}

TEST(DecideExchange, TwoChoicesRequiresAgreeingColors) {
    const NodeState v = fresh_node(0, 0, 1, false);
    const ExchangeDecision d =
        decide_exchange(v, 1, false, PeerSample{0, 1}, PeerSample{0, 2});
    EXPECT_EQ(d.kind, Kind::kNone);
}

TEST(DecideExchange, TwoChoicesRequiresBothAtLeaderGenMinusOne) {
    const NodeState v = fresh_node(0, 0, 2, false);
    // One sample lags a generation.
    const ExchangeDecision d =
        decide_exchange(v, 2, false, PeerSample{1, 3}, PeerSample{0, 3});
    EXPECT_NE(d.kind, Kind::kTwoChoices);
}

TEST(DecideExchange, TwoChoicesBlockedByPropFlag) {
    const NodeState v = fresh_node(0, 0, 1, true);
    const ExchangeDecision d =
        decide_exchange(v, 1, true, PeerSample{0, 2}, PeerSample{0, 2});
    // prop = true: no two-choices; also no propagation source above v... the
    // samples are gen 0 == v.gen, so nothing happens.
    EXPECT_EQ(d.kind, Kind::kNone);
}

TEST(DecideExchange, NoSelfPromotionWhenAlreadyAtLeaderGen) {
    const NodeState v = fresh_node(1, 0, 1, false);
    const ExchangeDecision d =
        decide_exchange(v, 1, false, PeerSample{0, 2}, PeerSample{0, 2});
    EXPECT_EQ(d.kind, Kind::kNone);
}

TEST(DecideExchange, PropagationIntoLeaderGenRequiresPropFlag) {
    const NodeState blocked = fresh_node(0, 0, 2, false);
    const ExchangeDecision d1 =
        decide_exchange(blocked, 2, false, PeerSample{2, 1}, PeerSample{0, 0});
    EXPECT_EQ(d1.kind, Kind::kNone);  // peer at leader gen but prop == false

    const NodeState allowed = fresh_node(0, 0, 2, true);
    const ExchangeDecision d2 =
        decide_exchange(allowed, 2, true, PeerSample{2, 1}, PeerSample{0, 0});
    EXPECT_EQ(d2.kind, Kind::kPropagation);
    EXPECT_EQ(d2.new_gen, 2U);
    EXPECT_EQ(d2.new_col, 1U);
}

TEST(DecideExchange, CatchUpBelowLeaderGenAlwaysAllowed) {
    // Peer at generation 1 < leader gen 2: adoption allowed even with
    // prop == false (Algorithm 2 line 9: gen(v̄) < gen).
    const NodeState v = fresh_node(0, 0, 2, false);
    const ExchangeDecision d =
        decide_exchange(v, 2, false, PeerSample{1, 3}, PeerSample{0, 0});
    EXPECT_EQ(d.kind, Kind::kPropagation);
    EXPECT_EQ(d.new_gen, 1U);
    EXPECT_EQ(d.new_col, 3U);
    EXPECT_TRUE(d.send_gen_signal);
}

TEST(DecideExchange, PrefersHigherGenerationPeer) {
    const NodeState v = fresh_node(0, 0, 3, true);
    const ExchangeDecision d =
        decide_exchange(v, 3, true, PeerSample{1, 5}, PeerSample{2, 6});
    EXPECT_EQ(d.kind, Kind::kPropagation);
    EXPECT_EQ(d.new_gen, 2U);
    EXPECT_EQ(d.new_col, 6U);
}

TEST(DecideExchange, TwoChoicesTakesPrecedenceOverPropagation) {
    // Both rules could fire; Algorithm 2 checks two-choices first.
    const NodeState v = fresh_node(0, 0, 2, false);
    const ExchangeDecision d =
        decide_exchange(v, 2, false, PeerSample{1, 4}, PeerSample{1, 4});
    EXPECT_EQ(d.kind, Kind::kTwoChoices);
    EXPECT_EQ(d.new_gen, 2U);
}

TEST(ApplyDecision, RefreshUpdatesStoredLeaderState) {
    NodeState v = fresh_node(0, 0, 1, false);
    ExchangeDecision d;
    d.kind = Kind::kRefreshOnly;
    const bool changed = apply_decision(v, d, 3, true);
    EXPECT_FALSE(changed);
    EXPECT_EQ(v.seen_gen, 3U);
    EXPECT_TRUE(v.seen_prop);
    EXPECT_EQ(v.gen, 0U);  // color/generation untouched
}

TEST(ApplyDecision, PromotionMutatesNode) {
    NodeState v = fresh_node(0, 0, 1, false);
    ExchangeDecision d;
    d.kind = Kind::kTwoChoices;
    d.new_gen = 1;
    d.new_col = 7;
    const bool changed = apply_decision(v, d, 1, false);
    EXPECT_TRUE(changed);
    EXPECT_EQ(v.gen, 1U);
    EXPECT_EQ(v.col, 7U);
}

TEST(ApplyDecision, NoneChangesNothing) {
    NodeState v = fresh_node(2, 3, 4, true);
    ExchangeDecision d;
    d.kind = Kind::kNone;
    EXPECT_FALSE(apply_decision(v, d, 9, false));
    EXPECT_EQ(v.gen, 2U);
    EXPECT_EQ(v.col, 3U);
    EXPECT_EQ(v.seen_gen, 4U);
}

}  // namespace
}  // namespace papc::async
