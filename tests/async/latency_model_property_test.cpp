#include <gtest/gtest.h>

#include <memory>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"

namespace papc::async {
namespace {

// Property sweep: the single-leader protocol must converge to the
// plurality and keep its invariants under *every* latency model, not just
// the analyzed exponential one (the PODC-title generalization).

struct ModelCase {
    const char* label;
    int which;
};

std::unique_ptr<sim::LatencyModel> make_model(int which) {
    switch (which) {
        case 0: return std::make_unique<sim::ExponentialLatency>(1.0);
        case 1: return std::make_unique<sim::ConstantLatency>(1.0);
        case 2: return std::make_unique<sim::UniformLatency>(0.5, 1.5);
        case 3: return std::make_unique<sim::GammaLatency>(3.0, 1.0 / 3.0);
        case 4: return std::make_unique<sim::WeibullLatency>(2.0, 1.1);
        default: return std::make_unique<sim::LogNormalLatency>(-0.5, 1.0);
    }
}

class LatencyModelSweep : public ::testing::TestWithParam<ModelCase> {};

TEST_P(LatencyModelSweep, ConvergesToPlurality) {
    Rng wrng(derive_seed(0x1A, GetParam().which));
    const Assignment a = make_biased_plurality(1500, 3, 2.0, wrng);
    AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 2500.0;
    c.record_series = false;
    SingleLeaderSimulation sim(a, c, make_model(GetParam().which),
                               derive_seed(0x1B, GetParam().which));
    const AsyncResult r = sim.run();
    EXPECT_TRUE(r.converged) << GetParam().label;
    EXPECT_TRUE(r.plurality_won) << GetParam().label;
}

TEST_P(LatencyModelSweep, InvariantsHold) {
    Rng wrng(derive_seed(0x2A, GetParam().which));
    const Assignment a = make_biased_plurality(900, 4, 2.2, wrng);
    AsyncConfig c;
    c.alpha_hint = 2.2;
    c.max_time = 2500.0;
    c.record_series = false;
    SingleLeaderSimulation sim(a, c, make_model(GetParam().which),
                               derive_seed(0x2B, GetParam().which));
    const AsyncResult r = sim.run();
    ASSERT_TRUE(r.converged) << GetParam().label;
    // Node generations bounded by the leader's.
    for (NodeId v = 0; v < 900; ++v) {
        ASSERT_LE(sim.node(v).gen, sim.leader().gen());
    }
    // Exchange accounting consistent.
    EXPECT_LE(r.exchanges, r.good_ticks);
    EXPECT_LE(r.two_choices_count + r.propagation_count + r.refresh_count,
              r.exchanges);
    // Every generation in the trace opened with two-choices.
    Generation seen = 0;
    for (const auto& tr : r.leader_trace) {
        if (tr.gen > seen) {
            EXPECT_FALSE(tr.prop) << GetParam().label;
            seen = tr.gen;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, LatencyModelSweep,
    ::testing::Values(ModelCase{"exponential", 0}, ModelCase{"constant", 1},
                      ModelCase{"uniform", 2}, ModelCase{"erlang3", 3},
                      ModelCase{"weibull2", 4}, ModelCase{"lognormal", 5}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace papc::async
