#include "async/simulation.hpp"

#include <gtest/gtest.h>

#include "opinion/assignment.hpp"

namespace papc::async {
namespace {

AsyncConfig fast_config() {
    AsyncConfig c;
    c.lambda = 1.0;
    c.alpha_hint = 2.0;
    c.max_time = 600.0;
    return c;
}

TEST(SingleLeaderSimulation, ConvergesToPlurality) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(2000, 4, 2.0, c, 1);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_GT(r.consensus_time, 0.0);
    EXPECT_GE(r.consensus_time, r.epsilon_time);
}

TEST(SingleLeaderSimulation, EpsilonConvergenceBeforeFullConsensus) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(4000, 2, 1.8, c, 2);
    ASSERT_TRUE(r.converged);
    EXPECT_GE(r.epsilon_time, 0.0);
    EXPECT_LE(r.epsilon_time, r.consensus_time);
}

TEST(SingleLeaderSimulation, CountsAreConsistent) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(1000, 4, 2.0, c, 3);
    EXPECT_GT(r.ticks, 0U);
    EXPECT_GT(r.good_ticks, 0U);
    EXPECT_LE(r.good_ticks, r.ticks);
    EXPECT_LE(r.exchanges, r.good_ticks);  // every exchange needs a good tick
    EXPECT_GT(r.two_choices_count, 0U);
    EXPECT_GT(r.propagation_count, 0U);
}

TEST(SingleLeaderSimulation, LeaderTraceAlternatesPhases) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(2000, 2, 2.0, c, 4);
    ASSERT_GE(r.leader_trace.size(), 3U);
    // Generations in the trace are non-decreasing, and each generation
    // starts with prop = false.
    for (std::size_t i = 1; i < r.leader_trace.size(); ++i) {
        const auto& prev = r.leader_trace[i - 1];
        const auto& cur = r.leader_trace[i];
        EXPECT_GE(cur.gen, prev.gen);
        if (cur.gen > prev.gen) {
            EXPECT_FALSE(cur.prop);
        }
    }
}

TEST(SingleLeaderSimulation, DeterministicForFixedSeed) {
    AsyncConfig c = fast_config();
    const AsyncResult a = run_single_leader(800, 3, 2.0, c, 7);
    const AsyncResult b = run_single_leader(800, 3, 2.0, c, 7);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_DOUBLE_EQ(a.consensus_time, b.consensus_time);
    EXPECT_EQ(a.exchanges, b.exchanges);
    EXPECT_EQ(a.two_choices_count, b.two_choices_count);
}

TEST(SingleLeaderSimulation, DifferentSeedsDiffer) {
    AsyncConfig c = fast_config();
    const AsyncResult a = run_single_leader(800, 3, 2.0, c, 8);
    const AsyncResult b = run_single_leader(800, 3, 2.0, c, 9);
    EXPECT_NE(a.exchanges, b.exchanges);
}

TEST(SingleLeaderSimulation, SlowChannelsSlowConvergence) {
    AsyncConfig fast = fast_config();
    AsyncConfig slow = fast_config();
    slow.lambda = 0.2;  // mean latency 5 time steps
    const AsyncResult rf = run_single_leader(1500, 2, 2.0, fast, 10);
    const AsyncResult rs = run_single_leader(1500, 2, 2.0, slow, 10);
    ASSERT_TRUE(rf.converged);
    ASSERT_TRUE(rs.converged);
    EXPECT_GT(rs.consensus_time, rf.consensus_time);
    EXPECT_GT(rs.steps_per_unit, rf.steps_per_unit);
}

TEST(SingleLeaderSimulation, CustomLatencyModel) {
    Rng wrng(11);
    const Assignment a = make_biased_plurality(1200, 2, 2.0, wrng);
    AsyncConfig c = fast_config();
    SingleLeaderSimulation sim(
        a, c, std::make_unique<sim::ConstantLatency>(0.5), 12);
    const AsyncResult r = sim.run();
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

TEST(SingleLeaderSimulation, SeriesAreRecorded) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(1000, 2, 2.0, c, 13);
    EXPECT_GT(r.plurality_fraction.size(), 4U);
    EXPECT_GT(r.leader_generation.size(), 4U);
    // The plurality fraction ends at 1.
    EXPECT_DOUBLE_EQ(r.plurality_fraction[r.plurality_fraction.size() - 1].value,
                     1.0);
}

TEST(SingleLeaderSimulation, RecordSeriesCanBeDisabled) {
    AsyncConfig c = fast_config();
    c.record_series = false;
    const AsyncResult r = run_single_leader(1000, 2, 2.0, c, 14);
    EXPECT_EQ(r.plurality_fraction.size(), 0U);
    EXPECT_TRUE(r.converged);
}

TEST(SingleLeaderSimulation, FinalTopGenerationWithinBudget) {
    AsyncConfig c = fast_config();
    const AsyncResult r = run_single_leader(2000, 4, 2.0, c, 15);
    ASSERT_TRUE(r.converged);
    // The top generation never exceeds the leader's final allowance, which
    // is bounded by G*; the leader trace's last entry gives the bound.
    EXPECT_LE(r.final_top_generation, r.leader_trace.back().gen);
}

TEST(SingleLeaderSimulation, ManyOpinionsSmallBias) {
    AsyncConfig c = fast_config();
    c.alpha_hint = 1.5;
    const AsyncResult r = run_single_leader(6000, 8, 1.5, c, 16);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

}  // namespace
}  // namespace papc::async
