#include "async/sequential_simulation.hpp"

#include <gtest/gtest.h>

namespace papc::async {
namespace {

AsyncConfig fast_config() {
    AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 500.0;
    c.record_series = false;
    return c;
}

TEST(SequentialSimulation, ConvergesToPlurality) {
    const AsyncResult r = run_sequential_single_leader(2000, 4, 2.0,
                                                       fast_config(), 1);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_EQ(r.winner, 0U);
}

TEST(SequentialSimulation, EveryTickIsGood) {
    // Instant channels: locking never triggers.
    const AsyncResult r = run_sequential_single_leader(1000, 2, 2.0,
                                                       fast_config(), 2);
    EXPECT_EQ(r.ticks, r.good_ticks);
    EXPECT_EQ(r.ticks, r.exchanges);
    EXPECT_EQ(r.channels_opened, 0U);
    EXPECT_DOUBLE_EQ(r.steps_per_unit, 1.0);
}

TEST(SequentialSimulation, MuchFasterThanLatencyModel) {
    // The latency model pays ≈ C1 steps per protocol unit; the sequential
    // model pays 1. Same workload scale, consensus time ratio should be
    // several-fold.
    AsyncConfig c = fast_config();
    const AsyncResult seq = run_sequential_single_leader(2000, 4, 2.0, c, 3);
    const AsyncResult lat = run_single_leader(2000, 4, 2.0, c, 3);
    ASSERT_TRUE(seq.converged);
    ASSERT_TRUE(lat.converged);
    EXPECT_LT(seq.consensus_time * 2.0, lat.consensus_time);
}

TEST(SequentialSimulation, LeaderTraceHasSameShapeAsLatencyModel) {
    // Both engines run the same protocol logic: generations alternate with
    // prop = false at each birth.
    const AsyncResult r = run_sequential_single_leader(3000, 4, 1.8,
                                                       fast_config(), 4);
    ASSERT_TRUE(r.converged);
    Generation seen = 0;
    for (const auto& tr : r.leader_trace) {
        if (tr.gen > seen) {
            EXPECT_FALSE(tr.prop);
            seen = tr.gen;
        }
    }
    EXPECT_GE(seen, 2U);
}

TEST(SequentialSimulation, DeterministicForSeed) {
    const AsyncResult a = run_sequential_single_leader(800, 3, 2.0,
                                                       fast_config(), 5);
    const AsyncResult b = run_sequential_single_leader(800, 3, 2.0,
                                                       fast_config(), 5);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_DOUBLE_EQ(a.consensus_time, b.consensus_time);
    EXPECT_EQ(a.two_choices_count, b.two_choices_count);
}

TEST(SequentialSimulation, NodeGenerationsBounded) {
    Rng wrng(6);
    const Assignment a = make_biased_plurality(1200, 3, 2.0, wrng);
    SequentialSingleLeaderSimulation sim(a, fast_config(), 7);
    const AsyncResult r = sim.run();
    ASSERT_TRUE(r.converged);
    for (NodeId v = 0; v < 1200; ++v) {
        EXPECT_LE(sim.node(v).gen, sim.leader().gen());
    }
}

}  // namespace
}  // namespace papc::async
