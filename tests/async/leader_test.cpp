#include "async/leader.hpp"

#include <gtest/gtest.h>

namespace papc::async {
namespace {

LeaderConfig config(std::uint64_t zero_threshold = 10,
                    std::uint64_t gen_threshold = 5,
                    Generation max_gen = 3) {
    LeaderConfig c;
    c.zero_signal_threshold = zero_threshold;
    c.generation_size_threshold = gen_threshold;
    c.max_generation = max_gen;
    return c;
}

TEST(Leader, InitialState) {
    const Leader l(config());
    EXPECT_EQ(l.gen(), 1U);
    EXPECT_FALSE(l.prop());
    EXPECT_EQ(l.zero_signal_count(), 0U);
    ASSERT_EQ(l.trace().size(), 1U);
    EXPECT_EQ(l.trace().front().gen, 1U);
}

TEST(Leader, PropFlipsAfterZeroSignalThreshold) {
    Leader l(config(10, 5, 3));
    for (int i = 0; i < 9; ++i) {
        l.on_zero_signal(static_cast<double>(i));
        EXPECT_FALSE(l.prop());
    }
    l.on_zero_signal(9.0);
    EXPECT_TRUE(l.prop());
}

TEST(Leader, GenSignalsForWrongGenerationIgnored) {
    Leader l(config());
    l.on_gen_signal(0.0, 0);
    l.on_gen_signal(0.0, 2);
    l.on_gen_signal(0.0, 99);
    EXPECT_EQ(l.generation_size(), 0U);
}

TEST(Leader, GenerationBirthResetsCountersAndProp) {
    Leader l(config(10, 3, 5));
    for (int i = 0; i < 10; ++i) l.on_zero_signal(0.1 * i);
    EXPECT_TRUE(l.prop());
    l.on_gen_signal(1.0, 1);
    l.on_gen_signal(1.1, 1);
    EXPECT_EQ(l.gen(), 1U);
    l.on_gen_signal(1.2, 1);  // threshold of 3 reached
    EXPECT_EQ(l.gen(), 2U);
    EXPECT_FALSE(l.prop());
    EXPECT_EQ(l.zero_signal_count(), 0U);
    EXPECT_EQ(l.generation_size(), 0U);
}

TEST(Leader, StopsAtMaxGeneration) {
    Leader l(config(4, 2, 2));
    // Drive to generation 2.
    l.on_gen_signal(0.0, 1);
    l.on_gen_signal(0.1, 1);
    EXPECT_EQ(l.gen(), 2U);
    // Attempt to go past the cap: counted but no birth.
    l.on_gen_signal(0.2, 2);
    l.on_gen_signal(0.3, 2);
    l.on_gen_signal(0.4, 2);
    EXPECT_EQ(l.gen(), 2U);
    EXPECT_GE(l.generation_size(), 2U);
}

TEST(Leader, PropStaysTrueUntilNextBirth) {
    Leader l(config(3, 100, 5));
    for (int i = 0; i < 3; ++i) l.on_zero_signal(0.1 * i);
    EXPECT_TRUE(l.prop());
    for (int i = 0; i < 50; ++i) l.on_zero_signal(1.0 + 0.1 * i);
    EXPECT_TRUE(l.prop());
}

TEST(Leader, TraceRecordsEveryTransition) {
    Leader l(config(2, 1, 3));
    l.on_zero_signal(0.5);
    l.on_zero_signal(0.6);   // prop -> true
    l.on_gen_signal(0.7, 1); // birth of generation 2
    l.on_zero_signal(0.8);
    l.on_zero_signal(0.9);   // prop -> true again
    ASSERT_EQ(l.trace().size(), 4U);
    EXPECT_FALSE(l.trace()[0].prop);
    EXPECT_TRUE(l.trace()[1].prop);
    EXPECT_EQ(l.trace()[2].gen, 2U);
    EXPECT_FALSE(l.trace()[2].prop);
    EXPECT_TRUE(l.trace()[3].prop);
    // Times are non-decreasing.
    for (std::size_t i = 1; i < l.trace().size(); ++i) {
        EXPECT_GE(l.trace()[i].time, l.trace()[i - 1].time);
    }
}

TEST(Leader, AlternatingPhasesAcrossGenerations) {
    // Drive several two-choices/propagation cycles and check the pattern:
    // each generation starts with prop = false and flips exactly once.
    Leader l(config(5, 2, 4));
    double t = 0.0;
    for (Generation g = 1; g < 4; ++g) {
        EXPECT_EQ(l.gen(), g);
        EXPECT_FALSE(l.prop());
        for (int i = 0; i < 5; ++i) l.on_zero_signal(t += 0.1);
        EXPECT_TRUE(l.prop());
        l.on_gen_signal(t += 0.1, g);
        l.on_gen_signal(t += 0.1, g);
    }
    EXPECT_EQ(l.gen(), 4U);
}

}  // namespace
}  // namespace papc::async
