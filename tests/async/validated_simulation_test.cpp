#include "async/validated_simulation.hpp"

#include <gtest/gtest.h>

#include "opinion/assignment.hpp"

namespace papc::async {
namespace {

AsyncConfig fast_config() {
    AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 1500.0;
    c.record_series = false;
    return c;
}

TEST(ValidatedSimulation, ConvergesToPlurality) {
    const ValidatedResult r =
        run_validated_single_leader(1500, 4, 2.0, fast_config(), 2.0, 1);
    EXPECT_TRUE(r.base.converged);
    EXPECT_TRUE(r.base.plurality_won);
    EXPECT_GT(r.commits, 0U);
}

TEST(ValidatedSimulation, AbortRateIsSmall) {
    // The leader changes state only O(G*) times; validation failures are
    // confined to short windows around those changes.
    const ValidatedResult r =
        run_validated_single_leader(2000, 4, 2.0, fast_config(), 2.0, 2);
    ASSERT_TRUE(r.base.converged);
    EXPECT_LT(r.abort_rate, 0.10);
    EXPECT_DOUBLE_EQ(
        r.abort_rate,
        static_cast<double>(r.aborts) / static_cast<double>(r.commits + r.aborts));
}

TEST(ValidatedSimulation, SlowMessagesSlowConvergence) {
    const ValidatedResult fast =
        run_validated_single_leader(1200, 2, 2.0, fast_config(), 10.0, 3);
    AsyncConfig slow_cfg = fast_config();
    slow_cfg.max_time = 4000.0;
    const ValidatedResult slow =
        run_validated_single_leader(1200, 2, 2.0, slow_cfg, 0.25, 3);
    ASSERT_TRUE(fast.base.converged);
    ASSERT_TRUE(slow.base.converged);
    EXPECT_GT(slow.base.consensus_time, fast.base.consensus_time);
    EXPECT_GT(slow.base.steps_per_unit, fast.base.steps_per_unit);
}

TEST(ValidatedSimulation, NearInstantMessagesMatchPlainEngineShape) {
    // With negligible message latency the validated engine behaves like
    // Algorithm 2+3 (same workload scale, similar consensus time).
    AsyncConfig c = fast_config();
    const AsyncResult plain = run_single_leader(1500, 4, 2.0, c, 4);
    const ValidatedResult validated =
        run_validated_single_leader(1500, 4, 2.0, c, 1000.0, 4);
    ASSERT_TRUE(plain.converged);
    ASSERT_TRUE(validated.base.converged);
    EXPECT_LT(validated.base.consensus_time, 2.5 * plain.consensus_time);
}

TEST(ValidatedSimulation, DeterministicForSeed) {
    const ValidatedResult a =
        run_validated_single_leader(800, 3, 2.0, fast_config(), 2.0, 5);
    const ValidatedResult b =
        run_validated_single_leader(800, 3, 2.0, fast_config(), 2.0, 5);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_DOUBLE_EQ(a.base.consensus_time, b.base.consensus_time);
}

TEST(ValidatedSimulation, InvariantNodeGenBoundedByLeader) {
    Rng wrng(6);
    const Assignment a = make_biased_plurality(1000, 3, 2.0, wrng);
    AsyncConfig c = fast_config();
    ValidatedSingleLeaderSimulation sim(
        a, c, sim::make_exponential_latency(1.0),
        sim::make_exponential_latency(2.0), 7);
    const ValidatedResult r = sim.run();
    ASSERT_TRUE(r.base.converged);
    for (NodeId v = 0; v < 1000; ++v) {
        EXPECT_LE(sim.node(v).gen, sim.leader().gen());
    }
}

TEST(ValidatedSimulation, PromotionsSplitIntoCommitKinds) {
    const ValidatedResult r =
        run_validated_single_leader(1500, 4, 2.0, fast_config(), 2.0, 8);
    ASSERT_TRUE(r.base.converged);
    EXPECT_EQ(r.commits, r.base.two_choices_count + r.base.propagation_count);
}

}  // namespace
}  // namespace papc::async
