#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace papc {
namespace {

TEST(Table, RendersHeaderAndRows) {
    Table t({"n", "time"});
    t.row().add(std::uint64_t{1024}).add(3.14159, 2);
    t.row().add(std::uint64_t{2048}).add(6.5, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("n"), std::string::npos);
    EXPECT_NE(out.find("time"), std::string::npos);
    EXPECT_NE(out.find("1024"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("6.50"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
    Table t({"a", "b"});
    t.row().add("short").add("x");
    t.row().add("a-much-longer-cell").add("y");
    const std::string out = t.render();
    // All lines have equal length in an aligned table.
    std::istringstream lines(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, CountsRowsAndColumns) {
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.column_count(), 3U);
    EXPECT_EQ(t.row_count(), 0U);
    t.row().add(1).add(2).add(3);
    EXPECT_EQ(t.row_count(), 1U);
}

TEST(Table, PrintWritesToStream) {
    Table t({"h"});
    t.row().add("v");
    std::ostringstream out;
    t.print(out);
    EXPECT_FALSE(out.str().empty());
}

TEST(FormatDouble, Precision) {
    EXPECT_EQ(format_double(1.23456, 2), "1.23");
    EXPECT_EQ(format_double(1.0, 0), "1");
    EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace papc
