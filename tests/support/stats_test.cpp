#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace papc {
namespace {

TEST(RunningStat, EmptyIsZero) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStat, SingleValue) {
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1U);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37 - 3.0;
        a.add(x);
        all.add(x);
    }
    for (int i = 50; i < 120; ++i) {
        const double x = i * 0.11 + 1.0;
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
    RunningStat a;
    a.add(1.0);
    a.add(2.0);
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2U);
    RunningStat b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2U);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Quantile, SortedInterpolation) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.125), 1.5);
}

TEST(Quantile, SingleElement) {
    const std::vector<double> v{7.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 7.0);
}

TEST(Quantile, UnsortedConvenience) {
    EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Summarize, EmptyInput) {
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0U);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicFields) {
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 100U);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_NEAR(s.p50, 50.5, 1e-9);
    EXPECT_NEAR(s.p10, 10.9, 1e-9);
    EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

}  // namespace
}  // namespace papc
