#include "support/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace papc {
namespace {

TEST(LogAddExp, MatchesDirectComputationInRange) {
    const double a = std::log(3.0);
    const double b = std::log(5.0);
    EXPECT_NEAR(log_add_exp(a, b), std::log(8.0), 1e-12);
}

TEST(LogAddExp, HandlesHugeValuesWithoutOverflow) {
    const double a = 1e6;
    const double b = 1e6 - 3.0;
    const double r = log_add_exp(a, b);
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_NEAR(r, a + std::log1p(std::exp(-3.0)), 1e-9);
}

TEST(LogAddExp, NegativeInfinityIdentity) {
    const double neg_inf = -std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(log_add_exp(neg_inf, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(log_add_exp(2.0, neg_inf), 2.0);
}

TEST(CeilLog2, KnownValues) {
    EXPECT_EQ(ceil_log2(1), 0);
    EXPECT_EQ(ceil_log2(2), 1);
    EXPECT_EQ(ceil_log2(3), 2);
    EXPECT_EQ(ceil_log2(4), 2);
    EXPECT_EQ(ceil_log2(5), 3);
    EXPECT_EQ(ceil_log2(1024), 10);
    EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(ClampSafe, NormalAndDegenerate) {
    EXPECT_DOUBLE_EQ(clamp_safe(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clamp_safe(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp_safe(11.0, 0.0, 10.0), 10.0);
    // Degenerate hi < lo returns lo.
    EXPECT_DOUBLE_EQ(clamp_safe(5.0, 10.0, 0.0), 10.0);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
    EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approx_equal(1.0, 1.001));
    EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-12)));
}

}  // namespace
}  // namespace papc
