#include "support/args.hpp"

#include <gtest/gtest.h>

namespace papc {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, KeyValuePairs) {
    const Args a = parse({"--n", "100", "--alpha", "1.5"});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.get_uint("n", 0), 100U);
    EXPECT_DOUBLE_EQ(a.get_double("alpha", 0.0), 1.5);
}

TEST(Args, EqualsSyntax) {
    const Args a = parse({"--n=42", "--name=test"});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.get_int("n", 0), 42);
    EXPECT_EQ(a.get("name", ""), "test");
}

TEST(Args, Flags) {
    const Args a = parse({"--verbose", "--n", "5"});
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(a.get_flag("verbose"));
    EXPECT_FALSE(a.get_flag("quiet"));
    EXPECT_EQ(a.get_int("n", 0), 5);
}

TEST(Args, FlagWithExplicitValue) {
    const Args a = parse({"--quiet=true", "--loud=0"});
    EXPECT_TRUE(a.get_flag("quiet"));
    EXPECT_FALSE(a.get_flag("loud"));
}

TEST(Args, Defaults) {
    const Args a = parse({});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.get("missing", "fallback"), "fallback");
    EXPECT_EQ(a.get_int("missing", -7), -7);
    EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
    EXPECT_FALSE(a.has("missing"));
}

TEST(Args, MalformedInputReportsError) {
    const Args a = parse({"positional"});
    EXPECT_FALSE(a.ok());
    EXPECT_NE(a.error().find("positional"), std::string::npos);
}

TEST(Args, TrailingFlag) {
    const Args a = parse({"--n", "3", "--dry-run"});
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(a.get_flag("dry-run"));
}

TEST(Args, UnusedDetection) {
    const Args a = parse({"--used", "1", "--typo", "2"});
    ASSERT_TRUE(a.ok());
    (void)a.get_int("used", 0);
    const auto unused = a.unused();
    ASSERT_EQ(unused.size(), 1U);
    EXPECT_EQ(unused[0], "typo");
}

TEST(Args, UnknownOptionErrorNamesTheTypo) {
    // The papc_cli regression: "--lamda 2" must be a hard error, not a
    // silently ignored default.
    const Args a = parse({"--lamda", "2", "--n", "100"});
    ASSERT_TRUE(a.ok());
    (void)a.get_uint("n", 0);
    (void)a.get_double("lambda", 1.0);  // the *correct* spelling
    const std::string error = a.unknown_option_error();
    EXPECT_NE(error.find("unknown option"), std::string::npos);
    EXPECT_NE(error.find("--lamda"), std::string::npos);
    EXPECT_EQ(error.find("--n"), std::string::npos);
}

TEST(Args, UnknownOptionErrorEmptyWhenAllQueried) {
    const Args a = parse({"--n", "100"});
    ASSERT_TRUE(a.ok());
    (void)a.get_uint("n", 0);
    EXPECT_TRUE(a.unknown_option_error().empty());
}

TEST(Args, UnknownOptionErrorListsEveryTypo) {
    const Args a = parse({"--foo", "1", "--bar", "2"});
    ASSERT_TRUE(a.ok());
    const std::string error = a.unknown_option_error();
    EXPECT_NE(error.find("unknown options"), std::string::npos);
    EXPECT_NE(error.find("--foo"), std::string::npos);
    EXPECT_NE(error.find("--bar"), std::string::npos);
}

TEST(Args, NegativeNumberValue) {
    const Args a = parse({"--offset", "-5"});
    ASSERT_TRUE(a.ok());
    // "-5" does not start with "--", so it binds as the value.
    EXPECT_EQ(a.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace papc
