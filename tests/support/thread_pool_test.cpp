#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace papc::support {
namespace {

TEST(ThreadPool, SingleThreadRunsInlineInTaskOrder) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1U);
    std::vector<std::size_t> order;
    pool.parallel_for(5, [&](std::size_t task, std::size_t worker) {
        EXPECT_EQ(worker, 0U);
        order.push_back(task);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4U);
    const std::size_t count = 10000;
    std::vector<std::atomic<int>> runs(count);
    for (auto& r : runs) r.store(0);
    pool.parallel_for(count, [&](std::size_t task, std::size_t worker) {
        ASSERT_LT(worker, 4U);
        runs[task].fetch_add(1);
    });
    for (std::size_t t = 0; t < count; ++t) {
        ASSERT_EQ(runs[t].load(), 1) << "task " << t;
    }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    // The same pool must serve many parallel_for calls (one per simulated
    // round) without leaking or deadlocking, including empty jobs.
    ThreadPool pool(3);
    std::atomic<std::uint64_t> total{0};
    for (int job = 0; job < 200; ++job) {
        pool.parallel_for(job % 7, [&](std::size_t task, std::size_t) {
            total.fetch_add(task + 1);
        });
    }
    // Sum over jobs of 1 + 2 + ... + (job % 7).
    std::uint64_t expected = 0;
    for (int job = 0; job < 200; ++job) {
        const std::uint64_t m = job % 7;
        expected += m * (m + 1) / 2;
    }
    EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, WorkerIndicesAreDenseAndStable) {
    // Per-worker scratch indexing relies on worker ids being unique among
    // concurrently running tasks and bounded by threads().
    ThreadPool pool(4);
    std::vector<std::atomic<int>> in_use(pool.threads());
    for (auto& w : in_use) w.store(0);
    std::atomic<bool> collision{false};
    pool.parallel_for(2000, [&](std::size_t, std::size_t worker) {
        if (in_use[worker].fetch_add(1) != 0) collision.store(true);
        in_use[worker].fetch_sub(1);
    });
    EXPECT_FALSE(collision.load());
}

TEST(ThreadPool, MoreTasksThanThreadsAndViceVersa) {
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallel_for(3, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
    count.store(0);
    pool.parallel_for(100, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace papc::support
