#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"

namespace papc {
namespace {

TEST(Histogram, BucketEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bucket_count(), 5U);
    EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsLandInCorrectBuckets) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(1.9);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.bucket(0), 2U);
    EXPECT_EQ(h.bucket(1), 1U);
    EXPECT_EQ(h.bucket(4), 1U);
    EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, UnderflowOverflow) {
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0);   // hi edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1U);
    EXPECT_EQ(h.overflow(), 2U);
    EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, QuantileOfUniformData) {
    Histogram h(0.0, 1.0, 100);
    Rng rng(31);
    for (int i = 0; i < 200000; ++i) h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
    EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileOfExponentialMatchesClosedForm) {
    Histogram h(0.0, 20.0, 2000);
    Rng rng(32);
    for (int i = 0; i < 200000; ++i) h.add(rng.exponential(1.0));
    // Median of Exp(1) is ln 2.
    EXPECT_NEAR(h.quantile(0.5), 0.693, 0.02);
}

TEST(Histogram, RenderProducesOneLinePerBucket) {
    Histogram h(0.0, 2.0, 4);
    h.add(0.5);
    h.add(1.5);
    const std::string art = h.render(10);
    int lines = 0;
    for (const char ch : art) {
        if (ch == '\n') ++lines;
    }
    EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace papc
