#include "support/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "support/stats.hpp"

namespace papc {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(7);
    Rng child = parent.split();
    // Child differs from a continued parent stream.
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent.next_u64() == child.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf) {
    Rng rng(4);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
    Rng rng(6);
    std::vector<int> counts(10, 0);
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        ++counts[rng.uniform_index(10)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
    }
}

TEST(Rng, UniformIndexOneAlwaysZero) {
    Rng rng(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0U);
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng rng(8);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
    Rng rng(9);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.exponential(2.0);
        EXPECT_GT(x, 0.0);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(10);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) s.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, GammaMeanAndVariance) {
    Rng rng(11);
    RunningStat s;
    const double shape = 4.0;
    const double scale = 0.5;
    for (int i = 0; i < 100000; ++i) s.add(rng.gamma(shape, scale));
    EXPECT_NEAR(s.mean(), shape * scale, 0.02);
    EXPECT_NEAR(s.variance(), shape * scale * scale, 0.05);
}

TEST(Rng, GammaShapeBelowOne) {
    Rng rng(12);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.gamma(0.5, 1.0);
        EXPECT_GE(x, 0.0);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, WeibullShapeOneIsExponential) {
    Rng rng(13);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) s.add(rng.weibull(1.0, 2.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
    Rng rng(14);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) {
        s.add(static_cast<double>(rng.poisson(3.0)));
    }
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.variance(), 3.0, 0.1);
}

TEST(Rng, PoissonLargeMean) {
    Rng rng(15);
    RunningStat s;
    for (int i = 0; i < 20000; ++i) {
        s.add(static_cast<double>(rng.poisson(500.0)));
    }
    EXPECT_NEAR(s.mean(), 500.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
    Rng rng(16);
    EXPECT_EQ(rng.poisson(0.0), 0U);
}

TEST(Rng, BinomialSmall) {
    Rng rng(17);
    RunningStat s;
    for (int i = 0; i < 50000; ++i) {
        const auto x = rng.binomial(20, 0.25);
        EXPECT_LE(x, 20U);
        s.add(static_cast<double>(x));
    }
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
}

TEST(Rng, BinomialLarge) {
    Rng rng(18);
    RunningStat s;
    for (int i = 0; i < 20000; ++i) {
        const auto x = rng.binomial(100000, 0.4);
        EXPECT_LE(x, 100000U);
        s.add(static_cast<double>(x));
    }
    EXPECT_NEAR(s.mean(), 40000.0, 20.0);
}

TEST(Rng, BinomialEdgeCases) {
    Rng rng(19);
    EXPECT_EQ(rng.binomial(0, 0.5), 0U);
    EXPECT_EQ(rng.binomial(10, 0.0), 0U);
    EXPECT_EQ(rng.binomial(10, 1.0), 10U);
}

TEST(Rng, DiscreteFollowsWeights) {
    Rng rng(20);
    const std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) ++counts[rng.discrete(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(21);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(copy);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(copy.begin(), copy.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleActuallyPermutes) {
    Rng rng(22);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i) v[i] = i;
    auto copy = v;
    rng.shuffle(copy);
    EXPECT_NE(v, copy);  // probability of identity is astronomically small
}

TEST(DeriveSeed, DistinctIndicesGiveDistinctSeeds) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        seeds.insert(derive_seed(123, i));
    }
    EXPECT_EQ(seeds.size(), 1000U);
}

TEST(DeriveSeed, StableAcrossCalls) {
    EXPECT_EQ(derive_seed(99, 7), derive_seed(99, 7));
    EXPECT_NE(derive_seed(99, 7), derive_seed(100, 7));
}

TEST(Splitmix64, KnownSequenceIsReproducible) {
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    }
}

TEST(Rng, UniformIndexExcludingCoversAllButExcluded) {
    Rng rng(17);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.uniform_index_excluding(10, 3);
        ASSERT_LT(v, 10U);
        ASSERT_NE(v, 3U);
        ++hits[static_cast<std::size_t>(v)];
    }
    for (std::size_t j = 0; j < hits.size(); ++j) {
        if (j == 3) {
            EXPECT_EQ(hits[j], 0);
        } else {
            EXPECT_GT(hits[j], 0);  // ~555 expected each
        }
    }
}

// split() derives the child by reseeding, not by a structural jump — the
// independence guarantee is statistical (see random.hpp). These smoke
// tests pin what the library actually relies on: parent and child streams
// neither overlap nor correlate on simulation-scale draw counts.

TEST(RngSplit, ParentAndChildSequencesDoNotOverlap) {
    constexpr std::size_t kDraws = 1000000;
    Rng parent(2020);
    Rng child = parent.split();
    // Any overlap of the two streams within the window would show up as a
    // shared 64-bit value; with independent streams the collision chance
    // over 1e6 + 1e6 draws is ~ 1e12 / 2^64 < 1e-7.
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < kDraws; ++i) {
        seen.insert(parent.next_u64());
    }
    for (std::size_t i = 0; i < kDraws; ++i) {
        ASSERT_EQ(seen.count(child.next_u64()), 0U) << "overlap at draw " << i;
    }
}

TEST(RngSplit, ChildStreamIsUncorrelatedWithParent) {
    constexpr std::size_t kDraws = 100000;
    Rng parent(7);
    Rng child = parent.split();
    // Pearson correlation of paired uniform draws should be ~0; a lagged
    // or shifted copy of the parent stream would correlate strongly.
    double sum_x = 0.0;
    double sum_y = 0.0;
    double sum_xx = 0.0;
    double sum_yy = 0.0;
    double sum_xy = 0.0;
    for (std::size_t i = 0; i < kDraws; ++i) {
        const double x = parent.uniform();
        const double y = child.uniform();
        sum_x += x;
        sum_y += y;
        sum_xx += x * x;
        sum_yy += y * y;
        sum_xy += x * y;
    }
    const double n = static_cast<double>(kDraws);
    const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    const double var_x = sum_xx / n - (sum_x / n) * (sum_x / n);
    const double var_y = sum_yy / n - (sum_y / n) * (sum_y / n);
    const double correlation = cov / std::sqrt(var_x * var_y);
    // 5σ bound for independent uniforms: 5/√n ≈ 0.016.
    EXPECT_LT(std::abs(correlation), 0.016);
}

TEST(RngSplit, RepeatedSplitsGiveDistinctChildren) {
    Rng parent(31);
    Rng a = parent.split();
    Rng b = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

// ------------------------------------------------- batched block interface
//
// The sync-round kernels rely on fill_u64 / uniform_indices being
// bit-identical to the scalar calls: same values in order AND the same
// generator state afterwards (rejected Lemire draws consume raw words in
// both variants). These tests pin that contract.

TEST(RngBatch, FillU64MatchesScalarSequence) {
    Rng scalar(77);
    Rng batched(77);
    std::vector<std::uint64_t> block(4097);  // crosses internal block sizes
    batched.fill_u64(block.data(), block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
        ASSERT_EQ(block[i], scalar.next_u64()) << "position " << i;
    }
    // State advanced identically: the streams stay in lockstep afterwards.
    EXPECT_EQ(batched.next_u64(), scalar.next_u64());
}

TEST(RngBatch, FillU64ZeroCountIsNoOp) {
    Rng a(78);
    Rng b(78);
    a.fill_u64(nullptr, 0);
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

void expect_uniform_indices_equivalent(std::uint64_t n, std::size_t count,
                                       std::uint64_t seed) {
    Rng scalar(seed);
    Rng batched(seed);
    std::vector<std::uint64_t> block(count);
    batched.uniform_indices(n, block.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(block[i], scalar.uniform_index(n))
            << "n=" << n << " position " << i;
    }
    // Rejected draws must have consumed raw words in both variants.
    EXPECT_EQ(batched.next_u64(), scalar.next_u64()) << "n=" << n;
}

TEST(RngBatch, UniformIndicesMatchesScalarSmallRange) {
    expect_uniform_indices_equivalent(3, 10000, 81);
    expect_uniform_indices_equivalent(1000003, 10000, 82);  // prime, not 2^k
}

TEST(RngBatch, UniformIndicesMatchesScalarPowerOfTwo) {
    expect_uniform_indices_equivalent(1ULL << 20U, 10000, 83);
}

TEST(RngBatch, UniformIndicesMatchesScalarUnderHeavyRejection) {
    // n just above 2^63: the Lemire threshold (2^64 - n) mod n = 2^64 - 2n
    // is huge, so nearly half of all raw words are rejected — the retry
    // path (same slot, next raw word) is exercised constantly.
    const std::uint64_t n = (1ULL << 63U) + 12345;
    expect_uniform_indices_equivalent(n, 5000, 84);
}

TEST(RngBatch, UniformIndicesMatchesScalarAcrossRefills) {
    // More outputs than the internal raw block: the refill path must keep
    // the raw stream seamless.
    expect_uniform_indices_equivalent(97, 100000, 85);
}

TEST(RngBatch, UniformIndicesSingleAndOne) {
    expect_uniform_indices_equivalent(1, 100, 86);  // always 0, still draws
    expect_uniform_indices_equivalent(5, 1, 87);
}

TEST(RngSubstream, PureFunctionOfStateAndLabels) {
    const Rng parent(90);
    Rng a = parent.substream(3, 7);
    Rng b = parent.substream(3, 7);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64()) << "draw " << i;
    }
    // Deriving did not advance the parent: a fresh same-seed generator
    // produces the parent's original stream.
    Rng mutable_parent = parent;
    ASSERT_EQ(mutable_parent.next_u64(), Rng(90).next_u64());
}

TEST(RngSubstream, DistinctLabelsGiveDistinctStreams) {
    const Rng parent(91);
    // Any label pair differing in either coordinate (including swapped
    // coordinates) must yield a different stream.
    const std::pair<std::uint64_t, std::uint64_t> labels[] = {
        {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 1}, {1, 2}, {7, 123}, {123, 7}};
    std::vector<std::uint64_t> firsts;
    for (const auto& [a, b] : labels) {
        firsts.push_back(parent.substream(a, b).next_u64());
    }
    for (std::size_t i = 0; i < firsts.size(); ++i) {
        for (std::size_t j = i + 1; j < firsts.size(); ++j) {
            EXPECT_NE(firsts[i], firsts[j]) << "label pairs " << i << ", " << j;
        }
    }
}

TEST(RngSubstream, DependsOnParentState) {
    Rng advanced(92);
    (void)advanced.next_u64();
    EXPECT_NE(Rng(92).substream(1, 2).next_u64(),
              advanced.substream(1, 2).next_u64());
}

TEST(RngSubstream, StreamsAreStatisticallyIndependent) {
    // Crude independence check à la the split() tests: 64-bit outputs of
    // sibling substreams should not collide over a long window.
    const Rng parent(93);
    Rng a = parent.substream(5, 0);
    Rng b = parent.substream(5, 1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100000; ++i) seen.insert(a.next_u64());
    for (int i = 0; i < 100000; ++i) {
        ASSERT_EQ(seen.count(b.next_u64()), 0U) << "draw " << i;
    }
}

}  // namespace
}  // namespace papc
