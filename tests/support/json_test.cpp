#include "support/json_value.hpp"
#include "support/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace papc {
namespace {

// ------------------------------------------------------------------ writer

TEST(JsonWriter, ScalarRoot) {
    JsonWriter w;
    w.value(std::uint64_t{42});
    EXPECT_EQ(w.str(), "42\n");
}

TEST(JsonWriter, ObjectAndArrayNesting) {
    JsonWriter w;
    w.begin_object();
    w.kv("name", "papc");
    w.key("values");
    w.begin_array();
    w.value(1);
    w.value(2.5);
    w.value(true);
    w.null_value();
    w.end_array();
    w.key("empty");
    w.begin_object();
    w.end_object();
    w.end_object();
    const std::string text = w.str();
    const JsonParseResult parsed = parse_json(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.at("name").as_string(), "papc");
    EXPECT_EQ(parsed.value.at("values").size(), 4U);
    EXPECT_TRUE(parsed.value.at("values")[3].is_null());
    EXPECT_EQ(parsed.value.at("empty").size(), 0U);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
    JsonWriter w;
    w.value(std::string("a\"b\\c\n\t\x01z"));
    const std::string text = w.str();
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\\\"), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    // And it parses back to the identical string.
    const JsonParseResult parsed = parse_json(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.as_string(), "a\"b\\c\n\t\x01z");
}

TEST(JsonWriter, DoublesRoundTripExactly) {
    const double cases[] = {0.0,     -0.0,   0.1,       1.0 / 3.0,
                            1e-308,  1e308,  12345.678, -2.5e-7,
                            86.00020496796567};
    for (const double value : cases) {
        const std::string text = JsonWriter::format_double(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
    }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    EXPECT_EQ(JsonWriter::format_double(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(
        JsonWriter::format_double(std::numeric_limits<double>::infinity()),
        "null");
}

TEST(JsonWriter, HumanFriendlyShortForms) {
    EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
    EXPECT_EQ(JsonWriter::format_double(2.0), "2");
}

using JsonWriterDeathTest = ::testing::Test;

TEST(JsonWriterDeathTest, KeyOutsideObjectAborts) {
    JsonWriter w;
    w.begin_array();
    EXPECT_DEATH(w.key("nope"), "PAPC_CHECK failed");
}

TEST(JsonWriterDeathTest, UnbalancedDocumentAborts) {
    JsonWriter w;
    w.begin_object();
    EXPECT_DEATH((void)w.str(), "PAPC_CHECK failed");
}

// ------------------------------------------------------------------ parser

TEST(JsonValue, ParsesScalars) {
    EXPECT_TRUE(parse_json("null").value.is_null());
    EXPECT_EQ(parse_json("true").value.as_bool(), true);
    EXPECT_EQ(parse_json("false").value.as_bool(), false);
    EXPECT_DOUBLE_EQ(parse_json("-12.5e2").value.as_number(), -1250.0);
    EXPECT_EQ(parse_json("\"hi\"").value.as_string(), "hi");
}

TEST(JsonValue, ParsesNestedDocument) {
    const JsonParseResult parsed = parse_json(
        R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": -3})");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue& v = parsed.value;
    EXPECT_EQ(v.size(), 3U);
    EXPECT_DOUBLE_EQ(v.at("a")[1].as_number(), 2.0);
    EXPECT_EQ(v.at("a")[2].at("b").as_string(), "x");
    EXPECT_TRUE(v.at("c").at("d").is_null());
    EXPECT_DOUBLE_EQ(v.number_or("e", 0.0), -3.0);
    EXPECT_DOUBLE_EQ(v.number_or("missing", 7.5), 7.5);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, ParsesStringEscapes) {
    const JsonParseResult parsed =
        parse_json(R"("a\"b\\c\/d\b\f\n\r\tAé")");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.as_string(), "a\"b\\c/d\b\f\n\r\tA\xc3\xa9");
}

TEST(JsonValue, PreservesMemberOrder) {
    const JsonParseResult parsed = parse_json(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value.members().size(), 3U);
    EXPECT_EQ(parsed.value.members()[0].first, "z");
    EXPECT_EQ(parsed.value.members()[1].first, "a");
    EXPECT_EQ(parsed.value.members()[2].first, "m");
}

TEST(JsonValue, RejectsMalformedInput) {
    EXPECT_FALSE(parse_json("").ok());
    EXPECT_FALSE(parse_json("{").ok());
    EXPECT_FALSE(parse_json("[1,]").ok());
    EXPECT_FALSE(parse_json("{\"a\" 1}").ok());
    EXPECT_FALSE(parse_json("\"unterminated").ok());
    EXPECT_FALSE(parse_json("01abc").ok());
    EXPECT_FALSE(parse_json("1 trailing").ok());
    EXPECT_FALSE(parse_json("nul").ok());
    EXPECT_FALSE(parse_json("{\"a\": 1,}").ok());
}

TEST(JsonValue, ErrorsCarryAnOffset) {
    const JsonParseResult parsed = parse_json("[1, 2, }");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("offset"), std::string::npos);
}

TEST(JsonValue, DepthLimitStopsRunawayNesting) {
    std::string deep;
    for (int i = 0; i < 600; ++i) deep += '[';
    for (int i = 0; i < 600; ++i) deep += ']';
    EXPECT_FALSE(parse_json(deep).ok());
}

TEST(JsonValue, WhitespaceTolerant) {
    const JsonParseResult parsed =
        parse_json("  \n\t{ \"a\" :\r\n [ 1 , 2 ] }  \n");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.at("a").size(), 2U);
}

}  // namespace
}  // namespace papc
