#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace papc {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CsvTest : public ::testing::Test {
protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = ::testing::TempDir() + "papc_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
    {
        CsvWriter w(path_, {"a", "b"});
        ASSERT_TRUE(w.ok());
        w.write_row(std::vector<std::string>{"1", "2"});
        w.write_row(std::vector<double>{3.5, 4.25});
    }
    const std::string content = read_file(path_);
    EXPECT_EQ(content, "a,b\n1,2\n3.5,4.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
    {
        CsvWriter w(path_, {"x"});
        w.write_row({std::string("he,llo")});
        w.write_row({std::string("say \"hi\"")});
    }
    const std::string content = read_file(path_);
    EXPECT_NE(content.find("\"he,llo\""), std::string::npos);
    EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvEscape, PlainCellUnchanged) {
    EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(CsvEscape, QuotesCellWithNewline) {
    EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace papc
