#include "support/timeseries.hpp"

#include <gtest/gtest.h>

namespace papc {
namespace {

TEST(TimeSeries, RecordAndAccess) {
    TimeSeries ts("x");
    ts.record(0.0, 1.0);
    ts.record(1.0, 2.0);
    ts.record(1.0, 3.0);  // equal time allowed
    EXPECT_EQ(ts.size(), 3U);
    EXPECT_EQ(ts.name(), "x");
    EXPECT_DOUBLE_EQ(ts[2].value, 3.0);
}

TEST(TimeSeries, ValueAtUsesStepInterpolation) {
    TimeSeries ts;
    ts.record(0.0, 10.0);
    ts.record(2.0, 20.0);
    ts.record(4.0, 30.0);
    EXPECT_DOUBLE_EQ(ts.value_at(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(ts.value_at(0.0), 10.0);
    EXPECT_DOUBLE_EQ(ts.value_at(1.99), 10.0);
    EXPECT_DOUBLE_EQ(ts.value_at(2.0), 20.0);
    EXPECT_DOUBLE_EQ(ts.value_at(3.5), 20.0);
    EXPECT_DOUBLE_EQ(ts.value_at(100.0), 30.0);
}

TEST(TimeSeries, FirstTimeReaching) {
    TimeSeries ts;
    ts.record(0.0, 0.2);
    ts.record(1.0, 0.5);
    ts.record(2.0, 0.9);
    EXPECT_DOUBLE_EQ(ts.first_time_reaching(0.5), 1.0);
    EXPECT_DOUBLE_EQ(ts.first_time_reaching(0.1), 0.0);
    EXPECT_LT(ts.first_time_reaching(0.99), 0.0);
}

TEST(TimeSeries, DownsampleKeepsEndpoints) {
    TimeSeries ts;
    for (int i = 0; i <= 100; ++i) {
        ts.record(static_cast<double>(i), static_cast<double>(i * i));
    }
    const TimeSeries small = ts.downsample(5);
    EXPECT_EQ(small.size(), 5U);
    EXPECT_DOUBLE_EQ(small[0].time, 0.0);
    EXPECT_DOUBLE_EQ(small[4].time, 100.0);
}

TEST(TimeSeries, DownsampleKeepsLastPointUnderFloatTruncation) {
    // Regression: with 100 points -> 48, stride·47 = 99/47·47 lands just
    // below 99 in floating point and the final sample used to be dropped.
    TimeSeries ts;
    for (int i = 0; i < 100; ++i) {
        ts.record(static_cast<double>(i) * 0.25, static_cast<double>(i));
    }
    const TimeSeries small = ts.downsample(48);
    EXPECT_EQ(small.size(), 48U);
    EXPECT_DOUBLE_EQ(small[47].time, 99.0 * 0.25);
    EXPECT_DOUBLE_EQ(small[47].value, 99.0);
}

TEST(TimeSeries, DownsampleShortSeriesUnchanged) {
    TimeSeries ts;
    ts.record(0.0, 1.0);
    ts.record(1.0, 2.0);
    const TimeSeries same = ts.downsample(10);
    EXPECT_EQ(same.size(), 2U);
}

}  // namespace
}  // namespace papc
