#include "analysis/gamma.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace papc::analysis {
namespace {

TEST(RegularizedGammaP, BoundaryValues) {
    EXPECT_DOUBLE_EQ(regularized_gamma_p(1.0, 0.0), 0.0);
    EXPECT_NEAR(regularized_gamma_p(1.0, 1e6), 1.0, 1e-12);
}

TEST(RegularizedGammaP, ShapeOneIsExponentialCdf) {
    // P(1, x) = 1 - e^-x.
    for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10) << x;
    }
}

TEST(RegularizedGammaP, IntegerShapeMatchesErlangSum) {
    // For integer a: P(a, x) = 1 - e^-x Σ_{i<a} x^i / i!.
    const double x = 3.0;
    const int a = 4;
    double sum = 0.0;
    double term = 1.0;
    for (int i = 0; i < a; ++i) {
        sum += term;
        term *= x / (i + 1);
    }
    EXPECT_NEAR(regularized_gamma_p(a, x), 1.0 - std::exp(-x) * sum, 1e-10);
}

TEST(RegularizedGammaP, HalfShapeMatchesErf) {
    // P(1/2, x) = erf(√x).
    for (const double x : {0.25, 1.0, 4.0}) {
        EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
    }
}

TEST(RegularizedGammaP, MonotoneInX) {
    double prev = 0.0;
    for (double x = 0.0; x <= 20.0; x += 0.25) {
        const double p = regularized_gamma_p(3.5, x);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(GammaCdf, MedianOfShape1) {
    // Exp(rate 2): median = ln(2)/2.
    EXPECT_NEAR(gamma_cdf(1.0, 0.5, std::log(2.0) / 2.0), 0.5, 1e-10);
}

TEST(GammaCdf, NegativeTimeIsZero) {
    EXPECT_DOUBLE_EQ(gamma_cdf(2.0, 1.0, -1.0), 0.0);
}

TEST(ErlangCdf, MatchesGammaCdf) {
    EXPECT_NEAR(erlang_cdf(3, 2.0, 1.5), gamma_cdf(3.0, 0.5, 1.5), 1e-12);
}

TEST(GammaQuantile, InvertsCdf) {
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        const double t = gamma_quantile(7.0, 1.0, q);
        EXPECT_NEAR(gamma_cdf(7.0, 1.0, t), q, 1e-8) << q;
    }
}

TEST(GammaQuantile, ScalesLinearlyWithScale) {
    const double q1 = gamma_quantile(3.0, 1.0, 0.9);
    const double q2 = gamma_quantile(3.0, 2.0, 0.9);
    EXPECT_NEAR(q2, 2.0 * q1, 1e-6);
}

TEST(Remark14, ExactBoundBelowRoundedBound) {
    for (const double lambda : {0.1, 0.5, 1.0, 2.0, 10.0}) {
        EXPECT_LT(remark14_c1_exact(lambda), remark14_c1_bound(lambda)) << lambda;
    }
}

TEST(Remark14, BoundIsTenOverThreeBeta) {
    EXPECT_NEAR(remark14_c1_bound(1.0), 10.0 / 3.0, 1e-12);
    EXPECT_NEAR(remark14_c1_bound(0.5), 20.0 / 3.0, 1e-12);
    // λ > 1 clamps β at 1.
    EXPECT_NEAR(remark14_c1_bound(5.0), 10.0 / 3.0, 1e-12);
}

TEST(Remark14, ExactFormIsSeventhRoot) {
    // (0.9 · 7!)^(1/7) with β = 1.
    EXPECT_NEAR(remark14_c1_exact(1.0), std::pow(0.9 * 5040.0, 1.0 / 7.0), 1e-12);
}

}  // namespace
}  // namespace papc::analysis
