#include "analysis/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace papc::analysis {
namespace {

TEST(LogAlphaPowPlus, SmallValuesMatchDirect) {
    // ln(α^(2^i) + k - 1) computed directly for small i.
    const double alpha = 1.5;
    const std::uint32_t k = 4;
    for (unsigned i = 0; i <= 4; ++i) {
        const double direct =
            std::log(std::pow(alpha, std::pow(2.0, i)) + k - 1.0);
        EXPECT_NEAR(log_alpha_pow_plus(alpha, k, i), direct, 1e-9) << i;
    }
}

TEST(LogAlphaPowPlus, NoOverflowForLargeI) {
    const double v = log_alpha_pow_plus(1.5, 8, 40);
    EXPECT_TRUE(std::isfinite(v));
    // For huge exponents the k-1 term is negligible: v ≈ 2^40 ln 1.5.
    EXPECT_NEAR(v, std::ldexp(std::log(1.5), 40), 1e-3);
}

TEST(LogAlphaPowPlus, KOneDropsAdditiveTerm) {
    EXPECT_NEAR(log_alpha_pow_plus(2.0, 1, 3), 8.0 * std::log(2.0), 1e-12);
}

TEST(GenerationsToReachBias, ExactPowers) {
    // α = 2: bias 16 = 2^(2^2) needs exactly 2 generations.
    EXPECT_EQ(generations_to_reach_bias(2.0, 16.0), 2U);
    EXPECT_EQ(generations_to_reach_bias(2.0, 17.0), 3U);
    EXPECT_EQ(generations_to_reach_bias(2.0, 2.0), 0U);   // already there
    EXPECT_EQ(generations_to_reach_bias(4.0, 2.0), 0U);   // above target
}

TEST(GenerationsToReachBias, SmallBiasNeedsManyGenerations) {
    const unsigned few = generations_to_reach_bias(1.5, 64.0);
    const unsigned many = generations_to_reach_bias(1.01, 64.0);
    EXPECT_GT(many, few);
    // Doubling rule: α (1+ε) needs ~log2(ln target / ε).
    EXPECT_GE(many, 8U);
}

TEST(GenerationsKToMonochromatic, GrowsWithN) {
    const unsigned small = generations_k_to_monochromatic(8.0, 1e3);
    const unsigned large = generations_k_to_monochromatic(8.0, 1e12);
    EXPECT_GE(large, small);
    EXPECT_GE(small, 1U);
}

TEST(TotalGenerations, ComposesBothPhases) {
    const unsigned g = total_generations(1.5, 8, 1 << 16, 2);
    const unsigned to_k = generations_to_reach_bias(1.5, 8.0);
    const unsigned to_mono = generations_k_to_monochromatic(8.0, 1 << 16);
    EXPECT_EQ(g, to_k + to_mono + 2);
}

TEST(TotalGenerations, SmallForLargeAlpha) {
    // Bias already enormous: only the k->n phase and the slack remain.
    const unsigned g = total_generations(100.0, 4, 1 << 16, 1);
    EXPECT_LE(g, 6U);
}

TEST(Theorem1RuntimeShape, MonotoneInParameters) {
    const double base = theorem1_runtime_shape(1 << 16, 8, 1.5);
    EXPECT_GT(theorem1_runtime_shape(1 << 16, 64, 1.5), base);   // more colors
    EXPECT_GE(theorem1_runtime_shape(1 << 24, 8, 1.5), base);    // more nodes
    EXPECT_GE(theorem1_runtime_shape(1 << 16, 8, 1.05), base);   // smaller bias
}

TEST(IdealBiasTrajectory, SquaresUntilCap) {
    const auto traj = ideal_bias_trajectory(2.0, 5, 1e6);
    ASSERT_EQ(traj.size(), 6U);
    EXPECT_DOUBLE_EQ(traj[0], 2.0);
    EXPECT_DOUBLE_EQ(traj[1], 4.0);
    EXPECT_DOUBLE_EQ(traj[2], 16.0);
    EXPECT_DOUBLE_EQ(traj[3], 256.0);
    EXPECT_DOUBLE_EQ(traj[4], 65536.0);
    EXPECT_DOUBLE_EQ(traj[5], 1e6);  // capped
}

TEST(IdealBiasTrajectory, AlphaOneStaysOne) {
    const auto traj = ideal_bias_trajectory(1.0, 4, 100.0);
    for (const double a : traj) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(CheckPreconditions, ClearlySatisfiedCase) {
    const PreconditionReport r = check_preconditions(1 << 20, 8, 2.0);
    EXPECT_TRUE(r.k_in_range);
    EXPECT_TRUE(r.alpha_sufficient);
    EXPECT_TRUE(r.all_satisfied());
    EXPECT_GT(r.alpha_threshold, 1.0);
    EXPECT_LT(r.alpha_threshold, 2.0);
}

TEST(CheckPreconditions, TooManyOpinions) {
    // k = 1024 at n = 2^16: √n/log2 n = 16 — far exceeded.
    const PreconditionReport r = check_preconditions(1 << 16, 1024, 100.0);
    EXPECT_FALSE(r.k_in_range);
}

TEST(CheckPreconditions, InsufficientBias) {
    const PreconditionReport r = check_preconditions(1 << 14, 8, 1.01);
    EXPECT_FALSE(r.alpha_sufficient);
    EXPECT_FALSE(r.all_satisfied());
    EXPECT_GT(r.alpha_threshold, 1.01);
}

TEST(CheckPreconditions, SingleOpinionTrivial) {
    const PreconditionReport r = check_preconditions(1024, 1, 1.0);
    EXPECT_TRUE(r.k_in_range);
    // Threshold degenerates to 1; alpha must strictly exceed it.
    EXPECT_DOUBLE_EQ(r.alpha_threshold, 1.0);
}

TEST(ComplexityProfile, MemoryGrowsLogarithmically) {
    const ComplexityProfile small = complexity_profile(1 << 10, 4, 2.0);
    const ComplexityProfile big = complexity_profile(1 << 20, 4, 2.0);
    EXPECT_GT(big.node_memory_bits, small.node_memory_bits);
    // Doubling the exponent adds ~2·10 address bits, nothing more.
    EXPECT_LE(big.node_memory_bits - small.node_memory_bits, 25.0);
    EXPECT_DOUBLE_EQ(small.address_bits, 10.0);
    EXPECT_DOUBLE_EQ(big.address_bits, 20.0);
}

TEST(ComplexityProfile, GenerationBitsTiny) {
    const ComplexityProfile p = complexity_profile(1 << 26, 8, 1.5);
    EXPECT_LE(p.generation_bits, 6.0);  // O(log log log n)
    EXPECT_GT(p.leader_message_bits, 0.0);
    EXPECT_GT(p.promotion_message_bits, p.leader_message_bits);
}

TEST(DominantFractionRecursion, FixedPoints) {
    EXPECT_DOUBLE_EQ(dominant_fraction_recursion(0.5, 10), 0.5);
    EXPECT_NEAR(dominant_fraction_recursion(1.0, 3), 1.0, 1e-12);
}

TEST(DominantFractionRecursion, ConvergesQuadraticallyToOne) {
    // Lemma 11: ε' < 2ε² — the error roughly squares per step.
    const double a1 = dominant_fraction_recursion(0.9, 1);
    const double a2 = dominant_fraction_recursion(0.9, 2);
    const double e0 = 0.1;
    EXPECT_LT(1.0 - a1, 2.0 * e0 * e0);
    EXPECT_LT(1.0 - a2, 2.0 * (1.0 - a1) * (1.0 - a1) + 1e-12);
    EXPECT_GT(dominant_fraction_recursion(0.9, 4), 1.0 - 1e-9);
}

}  // namespace
}  // namespace papc::analysis
