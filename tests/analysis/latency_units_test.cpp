#include "analysis/latency_units.hpp"

#include <gtest/gtest.h>

#include "analysis/gamma.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace papc::analysis {
namespace {

TEST(T3Cdf, BoundaryAndMonotone) {
    EXPECT_DOUBLE_EQ(t3_cdf_exponential(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(t3_cdf_exponential(1.0, -1.0), 0.0);
    double prev = 0.0;
    for (double t = 0.0; t <= 40.0; t += 1.0) {
        const double f = t3_cdf_exponential(1.0, t);
        EXPECT_GE(f, prev - 1e-9);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
    EXPECT_GT(t3_cdf_exponential(1.0, 40.0), 0.999);
}

TEST(T3Cdf, MatchesMonteCarloAtSeveralPoints) {
    // Empirical CDF from direct sampling of the composition.
    const double lambda = 1.0;
    const sim::ExponentialLatency latency(lambda);
    Rng rng(123);
    const int trials = 200000;
    for (const double t : {3.0, 6.0, 9.0}) {
        int below = 0;
        Rng local(derive_seed(5, static_cast<std::uint64_t>(t)));
        for (int i = 0; i < trials; ++i) {
            if (sample_t3(latency, local) < t) ++below;
        }
        const double empirical = static_cast<double>(below) / trials;
        EXPECT_NEAR(t3_cdf_exponential(lambda, t), empirical, 0.01) << t;
    }
    (void)rng;
}

TEST(T3Mean, ClosedForm) {
    EXPECT_DOUBLE_EQ(t3_mean_exponential(1.0), 6.0);
    EXPECT_DOUBLE_EQ(t3_mean_exponential(0.5), 11.0);
}

TEST(T3Mean, MatchesSampling) {
    const sim::ExponentialLatency latency(2.0);
    Rng rng(9);
    RunningStat s;
    for (int i = 0; i < 200000; ++i) s.add(sample_t3(latency, rng));
    EXPECT_NEAR(s.mean(), t3_mean_exponential(2.0), 0.02);
}

TEST(T3Quantile, InvertsCdf) {
    const double q90 = t3_quantile_exponential(1.0, 0.9);
    EXPECT_NEAR(t3_cdf_exponential(1.0, q90), 0.9, 1e-6);
}

TEST(T3Quantile, GrowsWithInverseLambda) {
    const double fast = t3_quantile_exponential(10.0, 0.9);
    const double slow = t3_quantile_exponential(0.1, 0.9);
    EXPECT_LT(fast, slow);
    // Figure 1: for small λ the quantile grows linearly with 1/λ; doubling
    // 1/λ should roughly double the quantile.
    const double a = t3_quantile_exponential(0.02, 0.9);
    const double b = t3_quantile_exponential(0.01, 0.9);
    EXPECT_NEAR(b / a, 2.0, 0.1);
}

TEST(T3QuantileMonteCarlo, AgreesWithExact) {
    const sim::ExponentialLatency latency(1.0);
    Rng rng(11);
    const double mc = t3_quantile_monte_carlo(latency, 0.9, 200000, rng);
    EXPECT_NEAR(mc, steps_per_unit_exact(1.0), 0.05);
}

TEST(Figure1Row, FieldsConsistent) {
    Rng rng(13);
    const Figure1Row row = figure1_row(1.0, 50000, rng);
    EXPECT_DOUBLE_EQ(row.inv_lambda, 1.0);
    EXPECT_NEAR(row.exact, row.monte_carlo, 0.15);
    // The Γ(7, β) majorization is an upper bound on the exact quantile.
    EXPECT_GE(row.gamma_bound, row.exact);
}

TEST(Figure1Row, GammaBoundQuantileBelowPaperRounding) {
    // Remark 14 rounds (0.9·7!)^(1/7)/β up to 10/(3β); the true Γ(7, β)
    // 0.9-quantile may exceed that rounded *series* bound, but for λ >= 1 it
    // stays within a small constant of it.
    Rng rng(14);
    const Figure1Row row = figure1_row(2.0, 20000, rng);
    EXPECT_GT(row.bound_10_3beta, 0.0);
    EXPECT_LT(row.exact, 4.0 * row.bound_10_3beta);
}

TEST(SampleT3, PositiveAndFiniteAcrossModels) {
    Rng rng(15);
    const sim::ConstantLatency constant(0.5);
    const sim::WeibullLatency weibull(2.0, 1.0);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(sample_t3(constant, rng), 0.0);
        EXPECT_GT(sample_t3(weibull, rng), 0.0);
    }
}

TEST(SampleT3, ConstantLatencyLowerBound) {
    // With Constant(c) latency, T3 >= 4c (two channel stages per half,
    // max+leader = 2c each) plus the waiting time.
    Rng rng(16);
    const sim::ConstantLatency constant(1.0);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(sample_t3(constant, rng), 4.0);
    }
}

// ---------------------------------------------- §5 validated-cycle C1

TEST(ValidatedCycle, ConstantLatencyClosedForm) {
    // Constant channels (c) and messages (m): the cycle is deterministic up
    // to the Exp(1) wait — max(c,c)+c + 2m + c + 2m = 3c + 4m plus wait.
    Rng rng(17);
    const sim::ConstantLatency channel(1.0);
    const sim::ConstantLatency message(0.25);
    for (int i = 0; i < 1000; ++i) {
        const double cycle = sample_validated_cycle(channel, message, rng);
        EXPECT_GT(cycle, 3.0 + 1.0);  // 3c + 4m, wait > 0
    }
}

TEST(ValidatedCycle, QuantileMonotoneInQ) {
    const sim::ExponentialLatency channel(1.0);
    const sim::ExponentialLatency message(2.0);
    Rng rng_a(18);
    Rng rng_b(18);
    const double q50 =
        validated_cycle_quantile_monte_carlo(channel, message, 0.5, 20000, rng_a);
    const double q90 =
        validated_cycle_quantile_monte_carlo(channel, message, 0.9, 20000, rng_b);
    EXPECT_GT(q90, q50);
}

TEST(ValidatedCycle, SlowerMessagesRaiseC1) {
    const sim::ExponentialLatency channel(1.0);
    const sim::ExponentialLatency fast_msg(10.0);
    const sim::ExponentialLatency slow_msg(0.25);
    Rng rng_a(19);
    Rng rng_b(19);
    const double fast =
        validated_cycle_quantile_monte_carlo(channel, fast_msg, 0.9, 20000, rng_a);
    const double slow =
        validated_cycle_quantile_monte_carlo(channel, slow_msg, 0.9, 20000, rng_b);
    EXPECT_GT(slow, fast);
}

TEST(ValidatedCycle, DominatesPlainT3) {
    // The validated cycle adds a validation channel and four messages on
    // top of (a subset of) T3's composition, so its C1 must exceed the
    // plain-engine C1 at the same rates.
    const sim::ExponentialLatency latency(1.0);
    Rng rng_a(20);
    Rng rng_b(20);
    const double plain = t3_quantile_monte_carlo(latency, 0.9, 20000, rng_a);
    const double validated = validated_cycle_quantile_monte_carlo(
        latency, latency, 0.9, 20000, rng_b);
    // Not a per-draw bound (different RNG streams), but 20k samples leave
    // no statistical doubt: E[validated] - E[T3] = 4/λ.
    EXPECT_GT(validated, plain);
}

// ---------------------------------------------- §4 cluster-exchange C1

TEST(ClusterExchange, ConstantLatencyClosedForm) {
    // Constant(c) latency: both five-channel stages are exactly 2c each
    // (max of equals + max of equals), so the sample is 4c + wait.
    Rng rng(21);
    const sim::ConstantLatency constant(1.0);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(sample_cluster_exchange(constant, rng), 4.0);
    }
}

TEST(ClusterExchange, DominatesPlainT3) {
    // Five channels in two stages on each side of the wait vs T3's three:
    // the cluster exchange is stochastically larger.
    const sim::ExponentialLatency latency(1.0);
    Rng rng_a(22);
    Rng rng_b(22);
    const double plain = t3_quantile_monte_carlo(latency, 0.9, 20000, rng_a);
    const double exchange =
        cluster_exchange_quantile_monte_carlo(latency, 0.9, 20000, rng_b);
    EXPECT_GT(exchange, plain);
}

TEST(ClusterExchange, DeterministicForSeed) {
    const sim::ExponentialLatency latency(0.5);
    Rng rng_a(23);
    Rng rng_b(23);
    EXPECT_DOUBLE_EQ(
        cluster_exchange_quantile_monte_carlo(latency, 0.9, 5000, rng_a),
        cluster_exchange_quantile_monte_carlo(latency, 0.9, 5000, rng_b));
}

}  // namespace
}  // namespace papc::analysis
