#include "analysis/hypoexponential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/latency_units.hpp"

namespace papc::analysis {
namespace {

TEST(Hypoexponential, SingleStageIsExponential) {
    for (const double t : {0.1, 0.5, 1.0, 3.0}) {
        EXPECT_NEAR(hypoexponential_cdf({2.0}, t), 1.0 - std::exp(-2.0 * t),
                    1e-12);
    }
}

TEST(Hypoexponential, TwoStageClosedForm) {
    // Exp(a) + Exp(b): F(t) = 1 - b/(b-a) e^{-at} + a/(b-a) e^{-bt}.
    const double a = 1.0;
    const double b = 3.0;
    for (const double t : {0.2, 1.0, 2.5}) {
        const double expected = 1.0 - b / (b - a) * std::exp(-a * t) +
                                a / (b - a) * std::exp(-b * t);
        EXPECT_NEAR(hypoexponential_cdf({a, b}, t), expected, 1e-12) << t;
    }
}

TEST(Hypoexponential, BoundaryAndMonotone) {
    const std::vector<double> rates{0.5, 1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(hypoexponential_cdf(rates, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(hypoexponential_cdf(rates, -1.0), 0.0);
    double prev = 0.0;
    for (double t = 0.0; t < 40.0; t += 0.5) {
        const double f = hypoexponential_cdf(rates, t);
        EXPECT_GE(f, prev - 1e-12);
        prev = f;
    }
    EXPECT_GT(hypoexponential_cdf(rates, 40.0), 0.999);
}

TEST(Hypoexponential, MomentFormulas) {
    const std::vector<double> rates{1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(hypoexponential_mean(rates), 1.0 + 0.5 + 0.25);
    EXPECT_DOUBLE_EQ(hypoexponential_variance(rates), 1.0 + 0.25 + 0.0625);
}

TEST(Hypoexponential, QuantileInvertsCdf) {
    const std::vector<double> rates{0.7, 1.3, 2.9};
    for (const double q : {0.1, 0.5, 0.9}) {
        const double t = hypoexponential_quantile(rates, q);
        EXPECT_NEAR(hypoexponential_cdf(rates, t), q, 1e-9);
    }
}

TEST(Hypoexponential, OrderInvariance) {
    EXPECT_NEAR(hypoexponential_cdf({1.0, 3.0, 5.0}, 1.2),
                hypoexponential_cdf({5.0, 1.0, 3.0}, 1.2), 1e-12);
}

TEST(Hypoexponential, PerturbedT3MatchesQuadrature) {
    // The distinct-rate closed form on slightly perturbed stage rates must
    // agree with the Gauss-Legendre quadrature used by Figure 1. Avoid
    // λ = 1 and λ = 0.5 where T3's stage rates collide exactly.
    for (const double lambda : {0.3, 1.7, 3.0}) {
        const auto rates = t3_perturbed_rates(lambda, 1e-4);
        for (const double t :
             {0.5 * t3_mean_exponential(lambda), t3_mean_exponential(lambda),
              2.0 * t3_mean_exponential(lambda)}) {
            EXPECT_NEAR(hypoexponential_cdf(rates, t),
                        t3_cdf_exponential(lambda, t), 2e-3)
                << "lambda=" << lambda << " t=" << t;
        }
    }
}

TEST(Hypoexponential, PerturbedT3MeanMatchesClosedForm) {
    const auto rates = t3_perturbed_rates(2.0, 1e-4);
    EXPECT_NEAR(hypoexponential_mean(rates), t3_mean_exponential(2.0), 1e-4);
}

}  // namespace
}  // namespace papc::analysis
