/// \file sparse_census_test.cpp
/// The PR 7 sparse-row contract: a GenerationCensus whose rows start as
/// sorted small-maps (k above the dense threshold) must be observationally
/// identical to the dense representation — same counts, totals, stats
/// (including the dense scan's zero-cell runner-up tie-breaks), and
/// highest-populated tracking — under randomized transition and
/// apply_deltas streams, across the sparse → dense promotion boundary.
/// The dense_k constructor hook forces each representation on one
/// workload.

#include "opinion/census.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/random.hpp"

namespace papc {
namespace {

void expect_stats_equal(const BiasStats& sparse, const BiasStats& dense,
                        const char* where) {
    EXPECT_EQ(sparse.total, dense.total) << where;
    EXPECT_EQ(sparse.dominant, dense.dominant) << where;
    EXPECT_EQ(sparse.dominant_count, dense.dominant_count) << where;
    EXPECT_EQ(sparse.runner_up, dense.runner_up) << where;
    EXPECT_EQ(sparse.runner_up_count, dense.runner_up_count) << where;
    EXPECT_EQ(sparse.alpha, dense.alpha) << where;  // bit-identical math
    EXPECT_DOUBLE_EQ(sparse.collision_probability,
                     dense.collision_probability)
        << where;
}

void expect_census_equal(const GenerationCensus& sparse,
                         const GenerationCensus& dense, std::uint32_t k,
                         const char* where) {
    ASSERT_EQ(sparse.highest_populated(), dense.highest_populated()) << where;
    for (Generation g = 0; g <= dense.highest_populated() + 1; ++g) {
        ASSERT_EQ(sparse.generation_size(g), dense.generation_size(g))
            << where << " generation " << g;
        for (Opinion j = 0; j < k; ++j) {
            ASSERT_EQ(sparse.count(g, j), dense.count(g, j))
                << where << " generation " << g << " opinion " << j;
        }
        expect_stats_equal(sparse.stats(g), dense.stats(g), where);
    }
    for (Opinion j = 0; j < k; ++j) {
        ASSERT_EQ(sparse.opinion_total(j), dense.opinion_total(j)) << where;
    }
    expect_stats_equal(sparse.pooled_stats(), dense.pooled_stats(), where);
    EXPECT_EQ(sparse.converged(), dense.converged()) << where;
    EXPECT_EQ(sparse.size_at_least(1), dense.size_at_least(1)) << where;
}

TEST(SparseCensus, RandomTransitionStreamMatchesDense) {
    Rng rng(1101);
    const std::size_t n = 4000;
    const std::uint32_t k = 50;
    std::vector<Opinion> initial(n);
    for (auto& op : initial) op = static_cast<Opinion>(rng.uniform_index(k));

    GenerationCensus sparse(n, k, /*dense_k=*/0);   // every row starts sparse
    GenerationCensus dense(n, k, /*dense_k=*/1U << 30U);  // always dense
    sparse.reset(initial);
    dense.reset(initial);
    expect_census_equal(sparse, dense, k, "after reset");

    // Track per-node (generation, opinion) so transitions stay legal.
    std::vector<Generation> gens(n, 0);
    std::vector<Opinion> ops = initial;
    for (int step = 0; step < 20000; ++step) {
        const std::size_t v = rng.uniform_index(n);
        // Mostly promote/migrate upward like Algorithm 1; sometimes move
        // within the generation.
        const Generation gen_to =
            gens[v] + static_cast<Generation>(rng.uniform_index(3) == 0 ? 0 : 1);
        const auto op_to = static_cast<Opinion>(rng.uniform_index(k));
        sparse.transition(gens[v], ops[v], gen_to, op_to);
        dense.transition(gens[v], ops[v], gen_to, op_to);
        gens[v] = gen_to;
        ops[v] = op_to;
    }
    expect_census_equal(sparse, dense, k, "after transitions");

    // At k = 50, generations most nodes flowed through must have promoted
    // (density threshold k/4), while the top fringe stays sparse.
    EXPECT_FALSE(sparse.row_is_sparse(0));
}

TEST(SparseCensus, RandomDeltaStreamMatchesDense) {
    Rng rng(1102);
    const std::size_t n = 3000;
    const std::uint32_t k = 80;
    std::vector<Opinion> initial(n);
    for (auto& op : initial) op = static_cast<Opinion>(rng.uniform_index(k));

    GenerationCensus sparse(n, k, /*dense_k=*/0);
    GenerationCensus dense(n, k, /*dense_k=*/1U << 30U);
    sparse.reset(initial);
    dense.reset(initial);

    // Random legal delta blocks: pick random movers from the current
    // census and re-place each in [gen, gen+1] with a random opinion —
    // exactly the shape of a round kernel's fused-census commit.
    std::vector<Generation> gens(n, 0);
    std::vector<Opinion> ops = initial;
    for (int round = 0; round < 60; ++round) {
        const Generation rows = dense.highest_populated() + 2;
        std::vector<std::int64_t> deltas(
            static_cast<std::size_t>(rows) * k, 0);
        for (int move = 0; move < 500; ++move) {
            const std::size_t v = rng.uniform_index(n);
            // A node drawn twice in one block may not climb past the
            // block's row bound (real rounds move each node once).
            const Generation gen_to = std::min<Generation>(
                gens[v] +
                    static_cast<Generation>(rng.uniform_index(4) == 0 ? 1 : 0),
                rows - 1);
            const auto op_to = static_cast<Opinion>(rng.uniform_index(k));
            --deltas[static_cast<std::size_t>(gens[v]) * k + ops[v]];
            ++deltas[static_cast<std::size_t>(gen_to) * k + op_to];
            gens[v] = gen_to;
            ops[v] = op_to;
        }
        sparse.apply_deltas(deltas, rows);
        dense.apply_deltas(deltas, rows);
    }
    expect_census_equal(sparse, dense, k, "after delta rounds");
}

TEST(SparseCensus, SparseStatsReplicateDenseZeroCellTieBreaks) {
    // The dense stats scan ranks zero-count cells by index when fewer
    // than two cells are populated; the sparse path must reproduce that
    // exactly (runner_up identity feeds alpha = inf reporting).
    const std::uint32_t k = 40;
    {
        // Single populated cell at opinion 0: dense runner-up is cell 1.
        GenerationCensus sparse(10, k, 0);
        GenerationCensus dense(10, k, 1U << 30U);
        const std::vector<Opinion> all_zero(10, 0);
        sparse.reset(all_zero);
        dense.reset(all_zero);
        expect_stats_equal(sparse.stats(0), dense.stats(0), "dominant at 0");
        EXPECT_EQ(sparse.stats(0).runner_up, 1U);
        EXPECT_TRUE(std::isinf(sparse.stats(0).alpha));
    }
    {
        // Single populated cell at opinion 7: dense runner-up is cell 0.
        GenerationCensus sparse(10, k, 0);
        GenerationCensus dense(10, k, 1U << 30U);
        const std::vector<Opinion> all_seven(10, 7);
        sparse.reset(all_seven);
        dense.reset(all_seven);
        expect_stats_equal(sparse.stats(0), dense.stats(0), "dominant at 7");
        EXPECT_EQ(sparse.stats(0).runner_up, 0U);
    }
    {
        // Tied dominants: lowest opinion wins dominant, other is runner-up.
        GenerationCensus sparse(10, k, 0);
        GenerationCensus dense(10, k, 1U << 30U);
        const std::vector<Opinion> tied = {3, 3, 3, 3, 3, 9, 9, 9, 9, 9};
        sparse.reset(tied);
        dense.reset(tied);
        expect_stats_equal(sparse.stats(0), dense.stats(0), "tied dominants");
        EXPECT_EQ(sparse.stats(0).dominant, 3U);
        EXPECT_EQ(sparse.stats(0).runner_up, 9U);
    }
    {
        // Empty generation: all-default stats either way.
        GenerationCensus sparse(10, k, 0);
        GenerationCensus dense(10, k, 1U << 30U);
        expect_stats_equal(sparse.stats(3), dense.stats(3), "empty row");
    }
}

TEST(SparseCensus, PromotionCrossoverKeepsCounts) {
    // Walk one row through the promotion threshold entry by entry and
    // check counts at every step (the promote itself must be lossless).
    const std::uint32_t k = 100;  // promotes at 25 distinct opinions
    const std::size_t n = 60;
    GenerationCensus census(n, k, /*dense_k=*/0);
    const std::vector<Opinion> initial(n, 0);
    census.reset(initial);

    std::vector<std::uint64_t> expected(k, 0);
    expected[0] = n;
    bool saw_sparse = false;
    bool saw_dense = false;
    for (std::uint32_t move = 0; move < 40; ++move) {
        const auto op_to = static_cast<Opinion>((move * 3 + 1) % k);
        census.transition(0, 0, 0, op_to);
        --expected[0];
        ++expected[op_to];
        for (Opinion j = 0; j < k; ++j) {
            ASSERT_EQ(census.count(0, j), expected[j])
                << "move " << move << " opinion " << j;
        }
        (census.row_is_sparse(0) ? saw_sparse : saw_dense) = true;
    }
    EXPECT_TRUE(saw_sparse) << "workload never exercised the sparse path";
    EXPECT_TRUE(saw_dense) << "workload never promoted";
    EXPECT_GT(census.memory_bytes(), 0U);
}

TEST(SparseCensus, RebuildThroughViewMatchesReset) {
    Rng rng(1103);
    const std::size_t n = 500;
    const std::uint32_t k = 90;
    std::vector<Opinion> ops(n);
    for (auto& op : ops) op = static_cast<Opinion>(rng.uniform_index(k));
    const std::vector<Generation> gens(n, 0);

    GenerationCensus via_reset(n, k, 0);
    via_reset.reset(ops);
    GenerationCensus via_rebuild(n, k, 0);
    via_rebuild.rebuild(gens, ops);
    for (Opinion j = 0; j < k; ++j) {
        ASSERT_EQ(via_rebuild.count(0, j), via_reset.count(0, j)) << j;
    }
    EXPECT_EQ(via_rebuild.highest_populated(), via_reset.highest_populated());
}

}  // namespace
}  // namespace papc
