/// \file packed_array_test.cpp
/// PackedOpinionArray unit contract (PR 7): lane-width selection per k,
/// set/get round-trips including the undecided sentinel at every width,
/// the sequential Writer against per-lane set(), shard-boundary word
/// ownership (kRoundBlock-aligned ranges never share a word), and the
/// census init path through view() matching a materialized vector.

#include "opinion/packed_array.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "opinion/census.hpp"
#include "support/random.hpp"

namespace papc {
namespace {

TEST(PackedOpinionArray, LaneWidthPerOpinionCount) {
    // All-ones lane is the sentinel, so k == 2^w needs the next width up.
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(2), 2U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(3), 2U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(4), 4U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(5), 4U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(15), 4U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(16), 8U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(17), 8U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(255), 8U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(256), 16U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(300), 16U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(65535), 16U);
    EXPECT_EQ(PackedOpinionArray::lane_bits_for(65536), 32U);
}

TEST(PackedOpinionArray, RoundTripsEveryWidthIncludingUndecided) {
    Rng rng(901);
    for (const std::uint32_t k : {2U, 3U, 15U, 200U, 40000U, 70000U}) {
        const std::size_t n = 1000 + k % 97;  // not word-aligned sizes
        PackedOpinionArray array(n, k);
        std::vector<Opinion> reference(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(array.get(i), 0U) << "fresh arrays start at opinion 0";
        }
        // Random writes (with overwrites) mirrored into a plain vector.
        for (int write = 0; write < 5000; ++write) {
            const std::size_t i = rng.uniform_index(n);
            const std::uint64_t draw = rng.uniform_index(k + 1);
            const Opinion op =
                draw == k ? kUndecided : static_cast<Opinion>(draw);
            array.set(i, op);
            reference[i] = op;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(array.get(i), reference[i]) << "k " << k << " i " << i;
        }
    }
}

TEST(PackedOpinionArray, VectorConstructorPacksVerbatim) {
    Rng rng(902);
    const std::uint32_t k = 15;
    std::vector<Opinion> source(777);
    for (auto& op : source) {
        const std::uint64_t draw = rng.uniform_index(k + 1);
        op = draw == k ? kUndecided : static_cast<Opinion>(draw);
    }
    const PackedOpinionArray array(source, k);
    ASSERT_EQ(array.size(), source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
        ASSERT_EQ(array.get(i), source[i]) << i;
    }
    // 4-bit lanes for k = 15: 16 lanes per word.
    EXPECT_EQ(array.lane_bits(), 4U);
    EXPECT_EQ(array.memory_bytes(), ((777 + 15) / 16) * 8U);
}

TEST(PackedOpinionArray, WriterMatchesPerLaneSet) {
    Rng rng(903);
    for (const std::uint32_t k : {3U, 13U, 250U}) {
        const std::size_t n = 3 * 4096 + 321;  // partial tail block
        std::vector<Opinion> values(n);
        for (auto& op : values) {
            const std::uint64_t draw = rng.uniform_index(k + 1);
            op = draw == k ? kUndecided : static_cast<Opinion>(draw);
        }
        PackedOpinionArray via_set(n, k);
        for (std::size_t i = 0; i < n; ++i) via_set.set(i, values[i]);

        // Shard-shaped writer ranges: word-aligned bases, tail at the end.
        PackedOpinionArray via_writer(n, k);
        for (std::size_t base = 0; base < n; base += 4096) {
            const std::size_t count = std::min<std::size_t>(4096, n - base);
            PackedOpinionArray::Writer writer(via_writer, base);
            for (std::size_t i = 0; i < count; ++i) {
                writer.push(values[base + i]);
            }
            writer.finish();
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(via_writer.get(i), via_set.get(i)) << "k " << k << " " << i;
        }
    }
}

TEST(PackedOpinionArray, ShardRangesNeverShareWords) {
    // The parallel-write contract: a kRoundBlock (4096) shard boundary
    // must fall on a word boundary at every lane width, so concurrent
    // shard Writers touch disjoint words.
    for (const unsigned lane_bits : {2U, 4U, 8U, 16U, 32U}) {
        const unsigned lanes_per_word = 64U / lane_bits;
        EXPECT_EQ(4096U % lanes_per_word, 0U) << lane_bits << "-bit lanes";
    }
    // And an interior writer flushes exactly at its range end: filling
    // shard 1 of a 2-shard array touches no shard-0 word.
    const std::uint32_t k = 3;  // 2-bit lanes, 32 per word: hardest case
    const std::size_t n = 2 * 4096;
    PackedOpinionArray array(n, k);
    for (std::size_t i = 0; i < 4096; ++i) array.set(i, 2);
    PackedOpinionArray::Writer writer(array, 4096);
    for (std::size_t i = 0; i < 4096; ++i) writer.push(1);
    writer.finish();
    for (std::size_t i = 0; i < 4096; ++i) {
        ASSERT_EQ(array.get(i), 2U) << i;  // shard 0 untouched
        ASSERT_EQ(array.get(4096 + i), 1U) << i;
    }
}

TEST(PackedOpinionArray, ViewFeedsCensusWithoutUnpackedCopy) {
    Rng rng(904);
    const std::uint32_t k = 13;
    const std::size_t n = 5000;
    std::vector<Opinion> source(n);
    for (auto& op : source) {
        const std::uint64_t draw = rng.uniform_index(k + 1);
        op = draw == k ? kUndecided : static_cast<Opinion>(draw);
    }
    const PackedOpinionArray packed(source, k);

    OpinionCensus from_vector(n, k);
    from_vector.reset(source);
    OpinionCensus from_view(n, k);
    from_view.reset(packed.view());
    for (Opinion j = 0; j < k; ++j) {
        EXPECT_EQ(from_view.count(j), from_vector.count(j)) << "opinion " << j;
    }
    EXPECT_EQ(from_view.undecided_count(), from_vector.undecided_count());
}

TEST(PackedOpinionArray, SwapExchangesStorage) {
    PackedOpinionArray a(100, 3);
    PackedOpinionArray b(50, 3);
    a.set(7, 2);
    b.set(7, 1);
    a.swap(b);
    EXPECT_EQ(a.size(), 50U);
    EXPECT_EQ(b.size(), 100U);
    EXPECT_EQ(a.get(7), 1U);
    EXPECT_EQ(b.get(7), 2U);
}

}  // namespace
}  // namespace papc
