#include "opinion/assignment.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "opinion/census.hpp"

namespace papc {
namespace {

std::vector<std::uint64_t> count_opinions(const Assignment& a) {
    std::vector<std::uint64_t> counts(a.num_opinions, 0);
    for (const Opinion op : a.opinions) {
        EXPECT_LT(op, a.num_opinions);
        ++counts[op];
    }
    return counts;
}

TEST(BiasedPlurality, SizesAndOpinionRange) {
    Rng rng(1);
    const Assignment a = make_biased_plurality(10000, 8, 1.5, rng);
    EXPECT_EQ(a.size(), 10000U);
    EXPECT_EQ(a.num_opinions, 8U);
    const auto counts = count_opinions(a);
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, 10000U);
}

TEST(BiasedPlurality, AchievesRequestedBias) {
    Rng rng(2);
    const double alpha = 2.0;
    const Assignment a = make_biased_plurality(100000, 5, alpha, rng);
    const auto counts = count_opinions(a);
    // Opinion 0 dominant, all others equal-ish; measured ratio near alpha.
    for (std::uint32_t j = 1; j < 5; ++j) {
        EXPECT_GT(counts[0], counts[j]);
        const double ratio =
            static_cast<double>(counts[0]) / static_cast<double>(counts[j]);
        EXPECT_NEAR(ratio, alpha, 0.05);
    }
}

TEST(BiasedPlurality, AlphaOneIsBalanced) {
    Rng rng(3);
    const Assignment a = make_biased_plurality(1000, 4, 1.0, rng);
    const auto counts = count_opinions(a);
    for (const auto c : counts) {
        EXPECT_NEAR(static_cast<double>(c), 250.0, 1.0);
    }
}

TEST(BiasedPlurality, SingleOpinionDegenerate) {
    Rng rng(4);
    const Assignment a = make_biased_plurality(100, 1, 1.0, rng);
    for (const Opinion op : a.opinions) EXPECT_EQ(op, 0U);
}

TEST(BiasedPlurality, OrderIsShuffled) {
    Rng rng(5);
    const Assignment a = make_biased_plurality(10000, 2, 1.2, rng);
    // If shuffled, the first half cannot be all opinion 0.
    bool saw_one_early = false;
    for (std::size_t i = 0; i < 100; ++i) {
        if (a.opinions[i] == 1) saw_one_early = true;
    }
    EXPECT_TRUE(saw_one_early);
}

TEST(TwoFrontRunners, BiasAndTail) {
    Rng rng(6);
    const Assignment a = make_two_front_runners(100000, 6, 1.5, 0.2, rng);
    const auto counts = count_opinions(a);
    const double ratio =
        static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
    EXPECT_NEAR(ratio, 1.5, 0.05);
    // Tail opinions share ~0.2/4 = 5% each.
    for (std::uint32_t j = 2; j < 6; ++j) {
        EXPECT_NEAR(static_cast<double>(counts[j]) / 100000.0, 0.05, 0.01);
    }
}

TEST(TwoFrontRunners, KTwoIgnoresTail) {
    Rng rng(7);
    const Assignment a = make_two_front_runners(1000, 2, 2.0, 0.5, rng);
    const auto counts = count_opinions(a);
    EXPECT_EQ(counts[0] + counts[1], 1000U);
}

TEST(AdditiveGap, ExactGap) {
    Rng rng(8);
    const Assignment a = make_additive_gap(10000, 4, 500, rng);
    const auto counts = count_opinions(a);
    EXPECT_GE(counts[0], counts[1] + 500);
    EXPECT_LE(counts[0], counts[1] + 500 + 4);  // remainder tolerance
}

TEST(Uniform, EqualSplit) {
    Rng rng(9);
    const Assignment a = make_uniform(1003, 4, rng);
    const auto counts = count_opinions(a);
    for (const auto c : counts) {
        EXPECT_GE(c, 250U);
        EXPECT_LE(c, 251U);
    }
}

TEST(Zipf, MonotoneCounts) {
    Rng rng(10);
    const Assignment a = make_zipf(100000, 6, 1.0, rng);
    const auto counts = count_opinions(a);
    for (std::uint32_t j = 1; j < 6; ++j) {
        EXPECT_GE(counts[j - 1], counts[j]);
    }
}

TEST(Zipf, ZeroExponentIsUniform) {
    Rng rng(11);
    const Assignment a = make_zipf(10000, 5, 0.0, rng);
    const auto counts = count_opinions(a);
    for (const auto c : counts) {
        EXPECT_NEAR(static_cast<double>(c), 2000.0, 5.0);
    }
}

TEST(FromCounts, ExactCounts) {
    Rng rng(12);
    const Assignment a = make_from_counts({7, 3, 5}, rng);
    EXPECT_EQ(a.size(), 15U);
    const auto counts = count_opinions(a);
    EXPECT_EQ(counts[0], 7U);
    EXPECT_EQ(counts[1], 3U);
    EXPECT_EQ(counts[2], 5U);
}

TEST(Theorem1Threshold, ShrinksWithNGrowsWithK) {
    const double t1 = theorem1_bias_threshold(1 << 14, 8);
    const double t2 = theorem1_bias_threshold(1 << 20, 8);
    const double t3 = theorem1_bias_threshold(1 << 14, 32);
    EXPECT_GT(t1, 1.0);
    EXPECT_LT(t2, t1);   // larger n -> smaller required bias
    EXPECT_GT(t3, t1);   // more opinions -> larger required bias
    EXPECT_DOUBLE_EQ(theorem1_bias_threshold(1000, 1), 1.0);
}

}  // namespace
}  // namespace papc
