#include <gtest/gtest.h>

#include <vector>

#include "opinion/census.hpp"
#include "support/random.hpp"

namespace papc {
namespace {

// Randomized differential test: drive GenerationCensus with thousands of
// random transitions and compare every queried statistic against a naive
// recount of the shadow node vector.

class CensusFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CensusFuzz, MatchesNaiveRecountUnderRandomTransitions) {
    const std::size_t n = 300;
    const std::uint32_t k = 5;
    Rng rng(GetParam());

    std::vector<Opinion> colors(n);
    std::vector<Generation> gens(n, 0);
    for (auto& c : colors) c = static_cast<Opinion>(rng.uniform_index(k));

    GenerationCensus census(n, k);
    census.reset(colors);

    for (int step = 0; step < 5000; ++step) {
        const auto v = static_cast<NodeId>(rng.uniform_index(n));
        const auto new_col = static_cast<Opinion>(rng.uniform_index(k));
        // Generations never decrease in the protocols; mirror that here.
        const Generation new_gen =
            gens[v] + static_cast<Generation>(rng.uniform_index(3));
        census.transition(gens[v], colors[v], new_gen, new_col);
        gens[v] = new_gen;
        colors[v] = new_col;

        if (step % 500 != 0) continue;

        // Naive recount.
        Generation top = 0;
        for (const Generation g : gens) top = std::max(top, g);
        EXPECT_EQ(census.highest_populated(), top);
        for (Generation g = 0; g <= top; ++g) {
            std::uint64_t size = 0;
            std::vector<std::uint64_t> counts(k, 0);
            for (NodeId u = 0; u < n; ++u) {
                if (gens[u] == g) {
                    ++size;
                    ++counts[colors[u]];
                }
            }
            ASSERT_EQ(census.generation_size(g), size) << "gen " << g;
            for (Opinion j = 0; j < k; ++j) {
                ASSERT_EQ(census.count(g, j), counts[j])
                    << "gen " << g << " color " << j;
            }
        }
        for (Opinion j = 0; j < k; ++j) {
            std::uint64_t total = 0;
            for (NodeId u = 0; u < n; ++u) {
                if (colors[u] == j) ++total;
            }
            ASSERT_DOUBLE_EQ(census.opinion_fraction(j),
                             static_cast<double>(total) / n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CensusFuzz,
                         ::testing::Values(11U, 22U, 33U, 44U, 55U));

// Same idea for the flat OpinionCensus including the undecided state.
class OpinionCensusFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpinionCensusFuzz, MatchesNaiveRecount) {
    const std::size_t n = 200;
    const std::uint32_t k = 4;
    Rng rng(GetParam());

    std::vector<Opinion> colors(n);
    for (auto& c : colors) {
        c = rng.bernoulli(0.2) ? kUndecided
                               : static_cast<Opinion>(rng.uniform_index(k));
    }
    OpinionCensus census(n, k);
    census.reset(colors);

    for (int step = 0; step < 4000; ++step) {
        const auto v = static_cast<NodeId>(rng.uniform_index(n));
        const Opinion to = rng.bernoulli(0.15)
                               ? kUndecided
                               : static_cast<Opinion>(rng.uniform_index(k));
        census.transition(colors[v], to);
        colors[v] = to;

        if (step % 400 != 0) continue;
        std::uint64_t undecided = 0;
        std::vector<std::uint64_t> counts(k, 0);
        for (const Opinion c : colors) {
            if (c == kUndecided) ++undecided;
            else ++counts[c];
        }
        ASSERT_EQ(census.undecided_count(), undecided);
        for (Opinion j = 0; j < k; ++j) {
            ASSERT_EQ(census.count(j), counts[j]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpinionCensusFuzz,
                         ::testing::Values(7U, 17U, 27U));

}  // namespace
}  // namespace papc
