#include "opinion/census.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace papc {
namespace {

TEST(StatsFromCounts, DominantAndRunnerUp) {
    const BiasStats s = stats_from_counts({10, 30, 20});
    EXPECT_EQ(s.dominant, 1U);
    EXPECT_EQ(s.runner_up, 2U);
    EXPECT_EQ(s.dominant_count, 30U);
    EXPECT_EQ(s.runner_up_count, 20U);
    EXPECT_DOUBLE_EQ(s.alpha, 1.5);
    EXPECT_EQ(s.total, 60U);
}

TEST(StatsFromCounts, CollisionProbability) {
    const BiasStats s = stats_from_counts({50, 50});
    EXPECT_DOUBLE_EQ(s.collision_probability, 0.5);
    const BiasStats mono = stats_from_counts({100, 0});
    EXPECT_DOUBLE_EQ(mono.collision_probability, 1.0);
}

TEST(StatsFromCounts, MonochromaticHasInfiniteAlpha) {
    const BiasStats s = stats_from_counts({0, 42, 0});
    EXPECT_TRUE(std::isinf(s.alpha));
    EXPECT_EQ(s.dominant, 1U);
    EXPECT_EQ(s.runner_up_count, 0U);
}

TEST(StatsFromCounts, EmptyGeneration) {
    const BiasStats s = stats_from_counts({0, 0});
    EXPECT_EQ(s.total, 0U);
    EXPECT_DOUBLE_EQ(s.collision_probability, 0.0);
}

TEST(StatsFromCounts, SingleOpinionVector) {
    const BiasStats s = stats_from_counts({7});
    EXPECT_EQ(s.dominant, 0U);
    EXPECT_EQ(s.runner_up, 0U);  // no second opinion exists
    EXPECT_TRUE(std::isinf(s.alpha));
}

TEST(CollisionLowerBound, MatchesRemark2WorstCase) {
    // Remark 2: worst case is all non-dominant colors equal; then
    // p = (α² + k - 1)/(α + k - 1)² exactly.
    const double alpha = 2.0;
    const std::uint32_t k = 5;
    // Build exact worst-case counts: c_a = α·m, others m.
    const BiasStats s = stats_from_counts({200, 100, 100, 100, 100});
    EXPECT_NEAR(s.collision_probability,
                collision_probability_lower_bound(alpha, k), 1e-12);
}

TEST(CollisionLowerBound, AtLeastOneOverK) {
    for (const std::uint32_t k : {2U, 4U, 16U}) {
        EXPECT_GE(collision_probability_lower_bound(1.0, k),
                  1.0 / static_cast<double>(k) - 1e-12);
    }
}

TEST(OpinionCensus, ResetAndCounts) {
    OpinionCensus c(5, 3);
    c.reset({0, 1, 1, 2, 2});
    EXPECT_EQ(c.count(0), 1U);
    EXPECT_EQ(c.count(1), 2U);
    EXPECT_EQ(c.count(2), 2U);
    EXPECT_EQ(c.undecided_count(), 0U);
    EXPECT_DOUBLE_EQ(c.fraction(1), 0.4);
}

TEST(OpinionCensus, TransitionsPreserveTotal) {
    OpinionCensus c(4, 2);
    c.reset({0, 0, 1, 1});
    c.transition(0, 1);
    EXPECT_EQ(c.count(0), 1U);
    EXPECT_EQ(c.count(1), 3U);
    c.transition(1, kUndecided);
    EXPECT_EQ(c.undecided_count(), 1U);
    c.transition(kUndecided, 0);
    EXPECT_EQ(c.undecided_count(), 0U);
    EXPECT_EQ(c.count(0) + c.count(1), 4U);
}

TEST(OpinionCensus, SelfTransitionIsNoop) {
    OpinionCensus c(2, 2);
    c.reset({0, 1});
    c.transition(0, 0);
    EXPECT_EQ(c.count(0), 1U);
}

TEST(OpinionCensus, ConvergedDetection) {
    OpinionCensus c(3, 2);
    c.reset({0, 0, 1});
    EXPECT_FALSE(c.converged());
    c.transition(1, 0);
    EXPECT_TRUE(c.converged());
    EXPECT_TRUE(c.unanimous(0));
    EXPECT_FALSE(c.unanimous(1));
}

TEST(OpinionCensus, UndecidedBlocksConvergence) {
    OpinionCensus c(2, 2);
    c.reset({0, kUndecided});
    EXPECT_FALSE(c.converged());
}

TEST(GenerationCensus, InitialStateAllGenerationZero) {
    GenerationCensus c(4, 2);
    c.reset({0, 0, 1, 1});
    EXPECT_EQ(c.generation_size(0), 4U);
    EXPECT_EQ(c.highest_populated(), 0U);
    EXPECT_DOUBLE_EQ(c.generation_fraction(0), 1.0);
    EXPECT_EQ(c.count(0, 0), 2U);
    EXPECT_EQ(c.count(5, 0), 0U);  // never-populated generation
}

TEST(GenerationCensus, TransitionMovesBetweenGenerations) {
    GenerationCensus c(3, 2);
    c.reset({0, 0, 1});
    c.transition(0, 0, 1, 0);
    EXPECT_EQ(c.generation_size(0), 2U);
    EXPECT_EQ(c.generation_size(1), 1U);
    EXPECT_EQ(c.highest_populated(), 1U);
    EXPECT_EQ(c.count(1, 0), 1U);
    // Color change during promotion.
    c.transition(0, 1, 1, 0);
    EXPECT_EQ(c.count(1, 0), 2U);
    EXPECT_DOUBLE_EQ(c.opinion_fraction(0), 1.0);
    EXPECT_TRUE(c.converged());
}

TEST(GenerationCensus, SizeAtLeastAccumulates) {
    GenerationCensus c(4, 2);
    c.reset({0, 0, 1, 1});
    c.transition(0, 0, 2, 0);
    c.transition(0, 1, 3, 1);
    EXPECT_EQ(c.size_at_least(0), 4U);
    EXPECT_EQ(c.size_at_least(1), 2U);
    EXPECT_EQ(c.size_at_least(3), 1U);
    EXPECT_EQ(c.size_at_least(4), 0U);
}

TEST(GenerationCensus, PerGenerationStats) {
    GenerationCensus c(6, 3);
    c.reset({0, 0, 0, 1, 1, 2});
    const BiasStats g0 = c.stats(0);
    EXPECT_EQ(g0.dominant, 0U);
    EXPECT_DOUBLE_EQ(g0.alpha, 1.5);
    const BiasStats empty = c.stats(7);
    EXPECT_EQ(empty.total, 0U);
}

TEST(GenerationCensus, PooledStatsAcrossGenerations) {
    GenerationCensus c(4, 2);
    c.reset({0, 0, 1, 1});
    c.transition(0, 0, 1, 0);
    const BiasStats pooled = c.pooled_stats();
    EXPECT_EQ(pooled.total, 4U);
    EXPECT_EQ(pooled.dominant_count, 2U);
}

TEST(GenerationCensus, RebuildMatchesTransitions) {
    GenerationCensus a(4, 2);
    a.reset({0, 1, 0, 1});
    a.transition(0, 0, 1, 0);
    a.transition(0, 1, 2, 0);

    // a now holds: gen0 = {col0: 1, col1: 1}, gen1 = {col0: 1},
    // gen2 = {col0: 1}; build the same layout directly.
    GenerationCensus b(4, 2);
    b.rebuild({1, 0, 0, 2}, {0, 1, 0, 0});
    for (Generation g = 0; g <= 2; ++g) {
        for (Opinion j = 0; j < 2; ++j) {
            EXPECT_EQ(a.count(g, j), b.count(g, j)) << "g=" << g << " j=" << j;
        }
    }
}

TEST(GenerationCensus, HighestPopulatedTracksUpAndDown) {
    GenerationCensus c(3, 2);
    c.reset({0, 1, 0});
    EXPECT_EQ(c.highest_populated(), 0U);
    c.transition(0, 0, 5, 0);  // sparse jump grows the cap on demand
    EXPECT_EQ(c.highest_populated(), 5U);
    c.transition(5, 0, 2, 0);  // generation 5 empties: cache must fall back
    EXPECT_EQ(c.highest_populated(), 2U);
    c.transition(2, 0, 0, 0);
    EXPECT_EQ(c.highest_populated(), 0U);
}

TEST(GenerationCensus, OpinionTotalMatchesPerGenerationSum) {
    GenerationCensus c(4, 3);
    c.reset({0, 1, 2, 0});
    c.transition(0, 0, 1, 2);  // also flips opinion 0 -> 2
    EXPECT_EQ(c.opinion_total(0), 1U);
    EXPECT_EQ(c.opinion_total(1), 1U);
    EXPECT_EQ(c.opinion_total(2), 2U);
    std::uint64_t sum = 0;
    for (Generation g = 0; g <= c.highest_populated(); ++g) {
        sum += c.count(g, 2);
    }
    EXPECT_EQ(sum, c.opinion_total(2));
}

TEST(GenerationCensus, ApplyDeltasMatchesTransitions) {
    GenerationCensus via_transitions(6, 2);
    via_transitions.reset({0, 0, 0, 1, 1, 1});
    GenerationCensus via_deltas(6, 2);
    via_deltas.reset({0, 0, 0, 1, 1, 1});

    via_transitions.transition(0, 0, 1, 0);
    via_transitions.transition(0, 1, 1, 1);
    via_transitions.transition(0, 1, 2, 0);  // opinion flip included

    // Same three moves as one row-major (generation, opinion) delta block.
    const Generation rows = 3;
    std::vector<std::int64_t> deltas(rows * 2, 0);
    deltas[0 * 2 + 0] -= 1;  // (0,0) -> (1,0)
    deltas[1 * 2 + 0] += 1;
    deltas[0 * 2 + 1] -= 2;  // (0,1) -> (1,1) and (0,1) -> (2,0)
    deltas[1 * 2 + 1] += 1;
    deltas[2 * 2 + 0] += 1;
    via_deltas.apply_deltas(deltas, rows);

    EXPECT_EQ(via_deltas.highest_populated(),
              via_transitions.highest_populated());
    for (Generation g = 0; g <= 2; ++g) {
        EXPECT_EQ(via_deltas.generation_size(g),
                  via_transitions.generation_size(g));
        for (Opinion j = 0; j < 2; ++j) {
            EXPECT_EQ(via_deltas.count(g, j), via_transitions.count(g, j))
                << "g=" << g << " j=" << j;
        }
    }
    for (Opinion j = 0; j < 2; ++j) {
        EXPECT_EQ(via_deltas.opinion_total(j),
                  via_transitions.opinion_total(j));
    }
}

TEST(GenerationCensus, ApplyDeltasGrowsGenerationCap) {
    GenerationCensus c(2, 2);
    c.reset({0, 1});
    const Generation rows = 40;  // far beyond the initial doubling cap
    std::vector<std::int64_t> deltas(static_cast<std::size_t>(rows) * 2, 0);
    deltas[0] -= 1;
    deltas[39 * 2 + 0] += 1;
    c.apply_deltas(deltas, rows);
    EXPECT_EQ(c.highest_populated(), 39U);
    EXPECT_EQ(c.count(39, 0), 1U);
    EXPECT_EQ(c.generation_size(0), 1U);
}

TEST(OpinionCensus, ApplyDeltasMatchesTransitions) {
    OpinionCensus via_transitions(5, 3);
    via_transitions.reset({0, 0, 1, 2, kUndecided});
    OpinionCensus via_deltas(5, 3);
    via_deltas.reset({0, 0, 1, 2, kUndecided});

    via_transitions.transition(0, kUndecided);
    via_transitions.transition(kUndecided, 2);  // the original undecided node
    via_transitions.transition(1, 0);

    std::vector<std::int64_t> deltas = {-1 + 1, -1, +1};
    via_deltas.apply_deltas(deltas, /*undecided_delta=*/0);

    for (Opinion j = 0; j < 3; ++j) {
        EXPECT_EQ(via_deltas.count(j), via_transitions.count(j)) << j;
    }
    EXPECT_EQ(via_deltas.undecided_count(), via_transitions.undecided_count());
}

}  // namespace
}  // namespace papc
