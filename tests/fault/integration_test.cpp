// Cross-family fault-injection pins, driven through api::run so every
// engine is exercised exactly the way papc_cli reaches it:
//   - a fixed faulty scenario is bit-identical at threads {1, 2, 8} for
//     all four families (the injector draws from (window/round, shard,
//     channel)-labeled substreams, never from lane timing),
//   - a plan with every rate at zero is byte-identical to the fault-free
//     run (attaching the layer costs nothing and shifts no tape),
//   - degraded runs actually report their damage through the uniform
//     fault-counter extras.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "api/registry.hpp"
#include "core/run_result.hpp"

namespace papc::api {
namespace {

/// One representative protocol per engine family. The population engine
/// is serial (the threads knob is inert there), but it rides along to pin
/// exactly that.
const char* const kFamilyProtocols[] = {"sync", "pp-undecided", "async",
                                        "multi"};

Scenario small_scenario(const std::string& protocol) {
    Scenario s;
    s.protocol = protocol;
    s.n = protocol == "multi" ? 1024 : 256;
    s.k = protocol == "sync" ? 3 : 4;
    s.alpha = 2.5;
    s.max_time = 600.0;
    s.max_steps = protocol == "sync" ? 2000 : 0;
    s.record_series = false;
    return s;
}

/// A scenario with every fault channel lit (each family consumes the
/// subset that applies to its model).
Scenario faulty_scenario(const std::string& protocol) {
    Scenario s = small_scenario(protocol);
    s.fault_loss = 0.1;
    s.fault_dup = 0.05;
    s.fault_corrupt = 0.05;
    s.fault_straggler_frac = 0.1;
    s.fault_straggler_scale = 2.0;
    s.fault_crash_rate = 0.002;
    s.fault_recover_rate = 0.05;
    s.byzantine_frac = 0.05;
    s.byzantine_policy = fault::ByzantinePolicy::kAdaptive;
    return s;
}

TEST(FaultIntegration, FaultyTrajectoriesAreBitIdenticalAcrossThreads) {
    for (const char* protocol : kFamilyProtocols) {
        Scenario s = faulty_scenario(protocol);
        s.threads = 1;
        const ScenarioResult base = run(s, 321);
        for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
            s.threads = threads;
            const ScenarioResult other = run(s, 321);
            EXPECT_EQ(core::serialize(base.run), core::serialize(other.run))
                << protocol << " threads=" << threads;
            EXPECT_EQ(base.extras, other.extras)
                << protocol << " threads=" << threads;
        }
    }
}

TEST(FaultIntegration, ZeroRatePlanIsByteIdenticalToFaultFree) {
    for (const char* protocol : kFamilyProtocols) {
        const ScenarioResult clean = run(small_scenario(protocol), 55);
        // Non-default but inactive fault knobs: a straggler scale with no
        // straggler fraction and a recover rate with no crash source must
        // not activate the layer, let alone perturb the trajectory.
        Scenario inert = small_scenario(protocol);
        inert.fault_straggler_scale = 9.0;
        inert.fault_recover_rate = 3.0;
        const ScenarioResult same = run(inert, 55);
        EXPECT_EQ(core::serialize(clean.run), core::serialize(same.run))
            << protocol;
        EXPECT_EQ(clean.extras, same.extras) << protocol;
        EXPECT_EQ(clean.extras.at("faults_injected"), 0.0) << protocol;
        EXPECT_EQ(clean.extras.at("nodes_crashed"), 0.0) << protocol;
    }
}

TEST(FaultIntegration, SameSeedReproducesTheSameFaultyRun) {
    for (const char* protocol : kFamilyProtocols) {
        const Scenario s = faulty_scenario(protocol);
        const ScenarioResult a = run(s, 77);
        const ScenarioResult b = run(s, 77);
        EXPECT_EQ(core::serialize(a.run), core::serialize(b.run)) << protocol;
        EXPECT_EQ(a.extras, b.extras) << protocol;
    }
}

TEST(FaultIntegration, MessageFaultsAreCountedByTheEventFamilies) {
    for (const char* protocol : {"async", "validated", "multi"}) {
        Scenario s = small_scenario(protocol);
        s.fault_loss = 0.2;
        s.fault_dup = 0.1;
        s.fault_corrupt = 0.1;
        s.fault_straggler_frac = 0.2;
        s.fault_straggler_scale = 2.0;
        const ScenarioResult r = run(s, 13);
        EXPECT_GT(r.extras.at("messages_lost"), 0.0) << protocol;
        EXPECT_GT(r.extras.at("messages_duplicated"), 0.0) << protocol;
        EXPECT_GT(r.extras.at("messages_corrupted"), 0.0) << protocol;
        EXPECT_GT(r.extras.at("messages_delayed"), 0.0) << protocol;
        EXPECT_GE(r.extras.at("faults_injected"),
                  r.extras.at("messages_lost"))
            << protocol;
    }
}

TEST(FaultIntegration, CrashesSuppressWorkInEveryFamily) {
    for (const char* protocol : kFamilyProtocols) {
        Scenario s = small_scenario(protocol);
        s.fault_crash_rate = 0.01;
        const ScenarioResult r = run(s, 17);
        EXPECT_GT(r.extras.at("nodes_crashed"), 0.0) << protocol;
        EXPECT_GT(r.extras.at("crash_skips"), 0.0) << protocol;
    }
}

TEST(FaultIntegration, ByzantineReportingReachesTheSamplingFamilies) {
    // Byzantine reporting lies on the sampling channel, which only the
    // round/pair families have; each policy must run to a valid result.
    for (const char* protocol : {"sync", "3-majority", "pp-undecided"}) {
        for (const fault::ByzantinePolicy policy :
             {fault::ByzantinePolicy::kFixed, fault::ByzantinePolicy::kRandom,
              fault::ByzantinePolicy::kAdaptive}) {
            Scenario s = small_scenario(protocol);
            s.byzantine_frac = 0.1;
            s.byzantine_policy = policy;
            const ScenarioResult r = run(s, 23);
            EXPECT_TRUE(core::consistent(r.run))
                << protocol << " " << fault::to_string(policy);
            EXPECT_GT(r.extras.at("byzantine_nodes"), 0.0)
                << protocol << " " << fault::to_string(policy);
        }
    }
}

TEST(FaultIntegration, PopulationMessageFaultsAreCounted) {
    Scenario s = small_scenario("pp-undecided");
    s.fault_loss = 0.3;
    s.fault_dup = 0.1;
    s.fault_corrupt = 0.1;
    const ScenarioResult r = run(s, 29);
    EXPECT_GT(r.extras.at("messages_lost"), 0.0);
    EXPECT_GT(r.extras.at("messages_duplicated"), 0.0);
    EXPECT_GT(r.extras.at("messages_corrupted"), 0.0);
    // Stragglers are meaningless without a latency axis: never counted.
    EXPECT_EQ(r.extras.at("messages_delayed"), 0.0);
}

TEST(FaultIntegration, HeavyLossStillLeavesAConsistentResult) {
    // Degradation, not corruption of the harness: even a badly damaged
    // run must produce an internally consistent RunResult.
    for (const char* protocol : kFamilyProtocols) {
        Scenario s = faulty_scenario(protocol);
        s.fault_loss = 0.5;
        s.fault_crash_rate = 0.02;
        const ScenarioResult r = run(s, 31);
        EXPECT_TRUE(core::consistent(r.run)) << protocol;
        EXPECT_GT(r.run.steps, 0U) << protocol;
    }
}

}  // namespace
}  // namespace papc::api
