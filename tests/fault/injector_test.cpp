#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "support/random.hpp"

namespace papc::fault {
namespace {

FaultPlan zero_plan() { return FaultPlan{}; }

TEST(FaultPlan, ZeroPlanIsInactiveAndValid) {
    const FaultPlan plan = zero_plan();
    EXPECT_FALSE(plan.message_faults_active());
    EXPECT_FALSE(plan.crash_active());
    EXPECT_FALSE(plan.byzantine_active());
    EXPECT_FALSE(plan.active());
    std::vector<std::string> problems;
    plan.validate(&problems);
    EXPECT_TRUE(problems.empty());
}

TEST(FaultPlan, ActivityPredicatesCoverEveryChannel) {
    FaultPlan plan;
    plan.loss = 0.1;
    EXPECT_TRUE(plan.message_faults_active());
    EXPECT_TRUE(plan.active());

    plan = zero_plan();
    plan.straggler_fraction = 0.1;
    EXPECT_TRUE(plan.message_faults_active());

    // Scale alone is a parameter, not a fault: nothing fires without a
    // straggler fraction, so the plan stays inactive.
    plan = zero_plan();
    plan.straggler_scale = 9.0;
    EXPECT_FALSE(plan.active());

    plan = zero_plan();
    plan.crash_rate = 0.5;
    EXPECT_TRUE(plan.crash_active());
    EXPECT_FALSE(plan.message_faults_active());

    // Recovery without a crash source is likewise inert.
    plan = zero_plan();
    plan.recover_rate = 2.0;
    EXPECT_FALSE(plan.active());

    plan = zero_plan();
    plan.scheduled_crashes.push_back({3, 1.5});
    EXPECT_TRUE(plan.crash_active());

    plan = zero_plan();
    plan.byzantine_fraction = 0.2;
    EXPECT_TRUE(plan.byzantine_active());
}

TEST(FaultPlan, ValidateFlagsEveryOutOfRangeKnob) {
    FaultPlan plan;
    plan.loss = 1.5;
    plan.duplication = -0.1;
    plan.corruption = 2.0;
    plan.crash_rate = -1.0;
    plan.recover_rate = -0.5;
    plan.straggler_fraction = 1.1;
    plan.straggler_scale = -2.0;
    plan.byzantine_fraction = -0.3;
    plan.scheduled_crashes.push_back({0, -1.0});
    std::vector<std::string> problems;
    plan.validate(&problems);
    EXPECT_EQ(problems.size(), 9U);
}

TEST(Injector, ConstructionNeverAdvancesTheParentGenerator) {
    Rng untouched(42);
    Rng parent(42);
    FaultPlan plan;
    plan.loss = 0.3;
    plan.crash_rate = 0.05;
    plan.recover_rate = 0.1;
    plan.byzantine_fraction = 0.25;
    const Injector injector(plan, 64, 100.0, parent);
    // The parent must produce the exact same tape as a generator that
    // never met the injector — substream derivation is pure.
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(parent.next_u64(), untouched.next_u64());
    }
}

TEST(Injector, ZeroRatesDrawNothingAndYieldTheDefaultFate) {
    Rng parent(7);
    const Injector injector(zero_plan(), 16, 10.0, parent);
    Rng stream = injector.serial_stream();
    const std::uint64_t before = Rng(stream).next_u64();
    const MessageFate fate = injector.draw_fate(stream);
    EXPECT_FALSE(fate.drop);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_FALSE(fate.corrupt);
    EXPECT_EQ(fate.delay_multiplier, 1.0);
    // No channel was enabled, so the stream consumed no draws at all.
    EXPECT_EQ(stream.next_u64(), before);
}

TEST(Injector, CertainLossDropsEverythingWithNoFurtherFate) {
    Rng parent(7);
    FaultPlan plan;
    plan.loss = 1.0;
    plan.duplication = 1.0;
    plan.corruption = 1.0;
    const Injector injector(plan, 16, 10.0, parent);
    Rng stream = injector.serial_stream();
    for (int i = 0; i < 32; ++i) {
        const MessageFate fate = injector.draw_fate(stream);
        EXPECT_TRUE(fate.drop);
        EXPECT_FALSE(fate.duplicate);  // a dropped message has no copies
        EXPECT_FALSE(fate.corrupt);
    }
}

TEST(Injector, FateRatesMatchThePlanStatistically) {
    Rng parent(123);
    FaultPlan plan;
    plan.loss = 0.3;
    plan.duplication = 0.2;
    plan.straggler_fraction = 0.25;
    plan.straggler_scale = 2.0;
    const Injector injector(plan, 16, 10.0, parent);
    Rng stream = injector.serial_stream();
    const int trials = 20000;
    int lost = 0;
    int duplicated = 0;
    int delayed = 0;
    for (int i = 0; i < trials; ++i) {
        const MessageFate fate = injector.draw_fate(stream);
        if (fate.drop) ++lost;
        if (fate.duplicate) ++duplicated;
        if (fate.delay_multiplier > 1.0) {
            ++delayed;
            EXPECT_GT(fate.delay_multiplier, 1.0);
        }
    }
    EXPECT_NEAR(static_cast<double>(lost) / trials, 0.30, 0.02);
    // Duplication / straggler draws happen only for surviving messages.
    EXPECT_NEAR(static_cast<double>(duplicated) / trials, 0.7 * 0.20, 0.02);
    EXPECT_NEAR(static_cast<double>(delayed) / trials, 0.7 * 0.25, 0.02);
}

TEST(Injector, MessageStreamsAreLabeledByWindowAndShard) {
    Rng parent(9);
    FaultPlan plan;
    plan.loss = 0.5;
    const Injector a(plan, 16, 10.0, parent);
    const Injector b(plan, 16, 10.0, parent);
    // Same (window, shard) label -> identical stream, across instances.
    EXPECT_EQ(a.message_stream(3, 1).next_u64(),
              b.message_stream(3, 1).next_u64());
    EXPECT_EQ(a.serial_stream().next_u64(), b.serial_stream().next_u64());
    // Different labels -> different tapes.
    EXPECT_NE(a.message_stream(3, 1).next_u64(),
              a.message_stream(3, 2).next_u64());
    EXPECT_NE(a.message_stream(3, 1).next_u64(),
              a.message_stream(4, 1).next_u64());
}

TEST(Injector, CrashWithoutRecoveryIsPermanent) {
    Rng parent(11);
    FaultPlan plan;
    plan.crash_rate = 0.5;  // mean crash time 2, horizon 50: all crash
    const Injector injector(plan, 32, 50.0, parent);
    EXPECT_GT(injector.nodes_crashed(), 0U);
    for (NodeId v = 0; v < 32; ++v) {
        if (!injector.is_down(v, 50.0)) continue;
        // Find the crash boundary by bisection and check monotonicity:
        // once down (no recover rate), down forever.
        double lo = 0.0;
        double hi = 50.0;
        for (int i = 0; i < 40; ++i) {
            const double mid = 0.5 * (lo + hi);
            (injector.is_down(v, mid) ? hi : lo) = mid;
        }
        EXPECT_FALSE(injector.is_down(v, lo));
        EXPECT_TRUE(injector.is_down(v, hi));
        EXPECT_TRUE(injector.is_down(v, 0.5 * (hi + 50.0)));
    }
}

TEST(Injector, RecoveryBringsNodesBackUp) {
    Rng parent(13);
    FaultPlan plan;
    plan.crash_rate = 1.0;
    plan.recover_rate = 4.0;  // short outages
    const Injector injector(plan, 64, 200.0, parent);
    // With mean downtime 0.25 over a horizon of 200, some node must be
    // down at some probe and up again later.
    bool saw_recovery = false;
    for (NodeId v = 0; v < 64 && !saw_recovery; ++v) {
        bool was_down = false;
        for (double t = 0.0; t <= 200.0; t += 0.125) {
            const bool down = injector.is_down(v, t);
            if (was_down && !down) saw_recovery = true;
            was_down = down;
        }
    }
    EXPECT_TRUE(saw_recovery);
}

TEST(Injector, ScheduledCrashesHitTheirExactBoundary) {
    Rng parent(17);
    FaultPlan plan;
    plan.scheduled_crashes.push_back({5, 7.5});
    const Injector injector(plan, 16, 100.0, parent);
    EXPECT_FALSE(injector.is_down(5, 7.499));
    EXPECT_TRUE(injector.is_down(5, 7.5));  // down AT the crash time
    EXPECT_TRUE(injector.is_down(5, 99.0));
    EXPECT_FALSE(injector.is_down(4, 99.0));
    EXPECT_EQ(injector.nodes_crashed(), 1U);
}

TEST(Injector, ScheduledCrashBeyondHorizonStillBindsButDoesNotCount) {
    Rng parent(17);
    FaultPlan plan;
    plan.scheduled_crashes.push_back({2, 500.0});
    const Injector injector(plan, 16, 100.0, parent);
    EXPECT_EQ(injector.nodes_crashed(), 0U);  // outside the horizon
    EXPECT_TRUE(injector.is_down(2, 500.0));
}

TEST(Injector, LeaderCrashMatchesTheLegacyBoundary) {
    Rng parent(19);
    FaultPlan plan;
    plan.scheduled_crashes.push_back({kLeaderNode, 12.0});
    const Injector injector(plan, 16, 100.0, parent);
    EXPECT_TRUE(injector.has_leader_crash());
    EXPECT_FALSE(injector.leader_down(11.999));
    EXPECT_TRUE(injector.leader_down(12.0));  // legacy t >= failure_time
    // The leader entry is not an ordinary-node crash.
    EXPECT_FALSE(injector.is_down(0, 99.0));
    EXPECT_EQ(injector.nodes_crashed(), 0U);

    Rng parent2(19);
    const Injector none(zero_plan(), 16, 100.0, parent2);
    EXPECT_FALSE(none.has_leader_crash());
    EXPECT_FALSE(none.leader_down(1e18));
}

TEST(Injector, DegenerateRateProductsRespectTheBoundaryCap) {
    Rng parent(23);
    FaultPlan plan;
    plan.crash_rate = 1000.0;
    plan.recover_rate = 1000.0;  // ~200k boundaries without the cap
    const Injector a(plan, 8, 100.0, parent);
    const Injector b(plan, 8, 100.0, parent);
    // Truncated, but still deterministic: both instances agree everywhere.
    for (NodeId v = 0; v < 8; ++v) {
        for (double t = 0.0; t < 100.0; t += 1.0) {
            EXPECT_EQ(a.is_down(v, t), b.is_down(v, t)) << v << " " << t;
        }
    }
}

TEST(Injector, ByzantineSetIsAscendingReproducibleAndFractionSized) {
    Rng parent(29);
    FaultPlan plan;
    plan.byzantine_fraction = 0.25;
    const Injector a(plan, 4096, 10.0, parent);
    const Injector b(plan, 4096, 10.0, parent);
    EXPECT_EQ(a.byzantine_nodes(), b.byzantine_nodes());
    EXPECT_TRUE(std::is_sorted(a.byzantine_nodes().begin(),
                               a.byzantine_nodes().end()));
    EXPECT_EQ(a.byzantine_count(), a.byzantine_nodes().size());
    EXPECT_NEAR(static_cast<double>(a.byzantine_count()) / 4096.0, 0.25,
                0.03);
    for (const NodeId v : a.byzantine_nodes()) {
        EXPECT_TRUE(a.is_byzantine(v));
    }
    EXPECT_EQ(a.byzantine_round_stream(5).next_u64(),
              b.byzantine_round_stream(5).next_u64());
    EXPECT_NE(a.byzantine_round_stream(5).next_u64(),
              a.byzantine_round_stream(6).next_u64());
}

TEST(Injector, ByzantineFractionOneMarksEveryNode) {
    Rng parent(31);
    FaultPlan plan;
    plan.byzantine_fraction = 1.0;
    const Injector injector(plan, 100, 10.0, parent);
    EXPECT_EQ(injector.byzantine_count(), 100U);
}

TEST(ByzantinePolicy, NamesRoundTrip) {
    for (const ByzantinePolicy policy :
         {ByzantinePolicy::kFixed, ByzantinePolicy::kRandom,
          ByzantinePolicy::kAdaptive}) {
        ByzantinePolicy parsed = ByzantinePolicy::kFixed;
        EXPECT_TRUE(try_parse_byzantine_policy(to_string(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    ByzantinePolicy out = ByzantinePolicy::kFixed;
    EXPECT_FALSE(try_parse_byzantine_policy("evil", &out));
}

TEST(StrongestMinority, PicksTheRunnerUpWithSmallestIndexTies) {
    const std::vector<std::uint64_t> counts = {50, 30, 30, 10};
    const auto count = [&counts](Opinion j) { return counts[j]; };
    EXPECT_EQ(strongest_minority(4, count), 1U);  // tie 1 vs 2 -> 1

    const std::vector<std::uint64_t> flipped = {10, 20, 70, 5};
    EXPECT_EQ(strongest_minority(
                  4, [&flipped](Opinion j) { return flipped[j]; }),
              1U);  // dominant is 2; runner-up is 1
}

TEST(StrongestMinority, DegeneratesGracefully) {
    const auto ones = [](Opinion) { return std::uint64_t{1}; };
    EXPECT_EQ(strongest_minority(1, ones), 0U);  // no minority exists
    EXPECT_EQ(strongest_minority(2, ones), 1U);  // dominant 0, minority 1
}

}  // namespace
}  // namespace papc::fault
