#include "sim/windowed_executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace papc::sim {
namespace {

// Pins the WindowedExecutor's window semantics — the contract the four
// event-driven engine families code against (see the header comment):
// half-open windows, empty-stretch skipping, straggler delivery at the
// barrier, per-window substreams labeled by a monotone counter, and
// thread-count-invariant trajectories.

WindowedOptions options(std::size_t shards, double window,
                        std::size_t threads = 1) {
    WindowedOptions o;
    o.shards = shards;
    o.threads = threads;
    o.window = window;
    return o;
}

TEST(WindowedExecutor, ShardPartitionIsContiguousAndBalanced) {
    const std::size_t n = 1000;
    const WindowedExecutor<int> executor(n, options(8, 1.0), Rng(1));
    ASSERT_EQ(executor.num_shards(), 8U);
    std::vector<std::size_t> counts(8, 0);
    std::size_t prev = 0;
    for (std::size_t v = 0; v < n; ++v) {
        const std::size_t s = executor.shard_of(v);
        ASSERT_LT(s, 8U);
        EXPECT_GE(s, prev);  // contiguous blocks: shard is monotone in v
        prev = s;
        ++counts[s];
    }
    for (const std::size_t c : counts) {
        EXPECT_GE(c, n / 8);  // every shard owns a near-equal block
        EXPECT_LE(c, n / 8 + 1);
    }
}

TEST(WindowedExecutor, DefaultWindowTracksLambda) {
    EXPECT_DOUBLE_EQ(default_window(1.0), 0.25);
    EXPECT_DOUBLE_EQ(default_window(0.5), 0.25);  // floor at rate 1
    EXPECT_DOUBLE_EQ(default_window(4.0), 0.0625);
    const WindowedExecutor<int> executor(10, options(2, 0.0), Rng(1));
    EXPECT_DOUBLE_EQ(executor.window_width(), 0.25);
}

TEST(WindowedExecutor, EventExactlyAtWindowEndBelongsToNextWindow) {
    // The window interval is half-open: [T_min, T_min + delta).
    WindowedExecutor<int> executor(8, options(1, 1.0), Rng(3));
    executor.seed(0, 0.0, 1);
    executor.seed(0, 1.0, 2);  // exactly T_min + delta
    std::vector<int> seen;
    const auto handler = [&](auto& /*ctx*/, Time /*t*/, int payload) {
        seen.push_back(payload);
    };

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(executor.window_end(), 1.0);

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(executor.window_end(), 2.0);
    EXPECT_TRUE(executor.empty());
    EXPECT_FALSE(executor.run_window(handler));
    EXPECT_EQ(executor.windows_run(), 2U);
    EXPECT_EQ(executor.events_processed(), 2U);
}

TEST(WindowedExecutor, EmptyTimeStretchesAreSkippedInOneWindow) {
    // The next window opens at the globally earliest pending timestamp,
    // not at the end of the previous window: a 1000-unit gap costs one
    // window, not 1000 of them.
    WindowedExecutor<int> executor(8, options(2, 1.0), Rng(4));
    executor.seed(0, 0.5, 1);
    executor.seed(1, 1000.25, 2);
    std::vector<int> seen;
    const auto handler = [&](auto& /*ctx*/, Time /*t*/, int payload) {
        seen.push_back(payload);
    };

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_DOUBLE_EQ(executor.window_end(), 1.5);
    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_DOUBLE_EQ(executor.window_end(), 1001.25);
    EXPECT_EQ(executor.windows_run(), 2U);
    EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(WindowedExecutor, SameShardEmissionInsideWindowRunsThisWindow) {
    // A same-shard emit with time < window_end interleaves into the
    // current window (the queue orders it exactly).
    WindowedExecutor<int> executor(8, options(1, 1.0), Rng(5));
    executor.seed(0, 0.0, 1);
    std::vector<int> seen;
    const auto handler = [&](auto& ctx, Time t, int payload) {
        seen.push_back(payload);
        if (payload == 1) {
            ctx.emit(0, t + 0.5, 2);   // inside [0, 1): this window
            ctx.emit(0, t + 1.25, 3);  // beyond the window: next one
        }
    };

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1, 2}));
    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(executor.stragglers(), 0U);
}

TEST(WindowedExecutor, CrossShardSendInsideWindowIsAStraggler) {
    // A cross-shard send whose timestamp lands inside the current window
    // waits at the barrier and runs first thing next window; the executor
    // counts it as a straggler.
    WindowedExecutor<int> executor(8, options(2, 1.0), Rng(6));
    executor.seed(0, 0.0, 1);
    std::vector<int> seen;
    std::vector<std::uint64_t> seen_window;
    const auto handler = [&](auto& ctx, Time t, int payload) {
        seen.push_back(payload);
        seen_window.push_back(executor.windows_run());
        if (payload == 1) {
            ctx.emit(1, t + 0.25, 2);  // inside shard 1's closed window
        }
    };

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1}));
    EXPECT_EQ(executor.stragglers(), 1U);

    ASSERT_TRUE(executor.run_window(handler));
    EXPECT_EQ(seen, (std::vector<int>{1, 2}));
    EXPECT_EQ(seen_window, (std::vector<std::uint64_t>{1, 2}));
    // The straggler forced window 2 to open before window 1's end — the
    // two windows overlap in time.
    EXPECT_LT(executor.window_end() - executor.window_width(), 1.0);
    EXPECT_EQ(executor.stragglers(), 1U);
}

TEST(WindowedExecutor, OverlappingWindowsGetFreshSubstreams) {
    // The substream label is the monotone window counter, not
    // floor(T_min / delta): after a straggler the next window can replay
    // the same time interval, and a time-derived label would replay the
    // previous window's draws. Pin that consecutive windows starting at
    // the same T_min draw differently.
    WindowedExecutor<int> executor(8, options(2, 1.0), Rng(7));
    executor.seed(0, 0.0, 1);
    std::vector<std::uint64_t> draws;
    const auto handler = [&](auto& ctx, Time t, int payload) {
        draws.push_back(ctx.rng().next_u64());
        if (payload == 1) ctx.emit(1, t, 2);  // straggler at the SAME time
    };

    ASSERT_TRUE(executor.run_window(handler));
    ASSERT_TRUE(executor.run_window(handler));
    ASSERT_EQ(draws.size(), 2U);
    EXPECT_NE(draws[0], draws[1]);
}

TEST(WindowedExecutor, TrajectoryInvariantAcrossThreadCounts) {
    // The full (shard, time, payload, draw) tape is a pure function of
    // (seed, shards, window) — never the thread count. Same workload at
    // threads {1, 2, 8} must produce byte-identical tapes.
    struct Step {
        std::size_t shard;
        Time time;
        int payload;
        std::uint64_t draw;
        bool operator==(const Step& o) const {
            return shard == o.shard && time == o.time &&
                   payload == o.payload && draw == o.draw;
        }
    };
    const auto run = [](std::size_t threads) {
        WindowedExecutor<int> executor(64, options(4, 0.5, threads), Rng(11));
        // Per-shard tapes: shards run concurrently, so each writes its
        // own vector; folding in shard order is deterministic.
        std::vector<std::vector<Step>> tapes(4);
        for (std::size_t s = 0; s < 4; ++s) {
            executor.seed(s, 0.1 * static_cast<double>(s + 1),
                          static_cast<int>(s));
        }
        const auto handler = [&](auto& ctx, Time t, int payload) {
            const std::uint64_t draw = ctx.rng().next_u64();
            tapes[ctx.shard()].push_back(Step{ctx.shard(), t, payload, draw});
            if (payload < 40) {
                // Bounce between shards and within the shard.
                const std::size_t target = (ctx.shard() + 1) % 4;
                ctx.emit(target, t + 0.05 + 1e-3 * (draw % 7), payload + 4);
                ctx.emit(ctx.shard(), t + 0.2, payload + 5);
            }
        };
        while (executor.run_window(handler)) {
        }
        std::vector<Step> tape;
        for (const auto& shard_tape : tapes) {
            tape.insert(tape.end(), shard_tape.begin(), shard_tape.end());
        }
        return tape;
    };

    const std::vector<Step> t1 = run(1);
    const std::vector<Step> t2 = run(2);
    const std::vector<Step> t8 = run(8);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
}

TEST(WindowedExecutor, WorksWithEveryQueueKind) {
    // The executor is queue-kind agnostic: identical tapes whichever
    // SchedulerQueue implementation backs the shards.
    const auto run = [](QueueKind kind) {
        WindowedOptions o = options(2, 1.0);
        o.queue_kind = kind;
        WindowedExecutor<int> executor(16, o, Rng(13));
        executor.seed(0, 0.0, 0);
        std::vector<int> seen;
        const auto handler = [&](auto& ctx, Time t, int payload) {
            seen.push_back(payload);
            if (payload < 20) {
                ctx.emit(payload % 2, t + 0.3, payload + 1);
            }
        };
        while (executor.run_window(handler)) {
        }
        return seen;
    };
    const std::vector<int> heap = run(QueueKind::kBinaryHeap);
    EXPECT_EQ(heap, run(QueueKind::kCalendar));
    EXPECT_EQ(heap, run(QueueKind::kLadder));
    ASSERT_EQ(heap.size(), 21U);
}

}  // namespace
}  // namespace papc::sim
