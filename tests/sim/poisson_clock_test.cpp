#include "sim/poisson_clock.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace papc::sim {
namespace {

TEST(PoissonClock, IntervalMeanMatchesRate) {
    const PoissonClock clock(2.0);
    Rng rng(1);
    RunningStat s;
    for (int i = 0; i < 100000; ++i) s.add(clock.next_interval(rng));
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(PoissonClock, IntervalsPositive) {
    const PoissonClock clock(1.0);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) EXPECT_GT(clock.next_interval(rng), 0.0);
}

TEST(PoissonClock, TicksInWindowMean) {
    const PoissonClock clock(1.0);
    Rng rng(3);
    RunningStat s;
    for (int i = 0; i < 50000; ++i) {
        s.add(static_cast<double>(clock.ticks_in(rng, 5.0)));
    }
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.variance(), 5.0, 0.2);
}

TEST(PoissonClock, ZeroWindowNoTicks) {
    const PoissonClock clock(1.0);
    Rng rng(4);
    EXPECT_EQ(clock.ticks_in(rng, 0.0), 0U);
}

TEST(PoissonClock, RateAccessor) {
    EXPECT_DOUBLE_EQ(PoissonClock(3.5).rate(), 3.5);
}

}  // namespace
}  // namespace papc::sim
