#include "sim/latency.hpp"

#include <gtest/gtest.h>

#include "support/random.hpp"
#include "support/stats.hpp"

namespace papc::sim {
namespace {

// Empirical mean of `model` over `trials` samples.
double empirical_mean(const LatencyModel& model, int trials, std::uint64_t seed) {
    Rng rng(seed);
    RunningStat s;
    for (int i = 0; i < trials; ++i) s.add(model.sample(rng));
    return s.mean();
}

TEST(ExponentialLatency, MeanMatches) {
    const ExponentialLatency m(4.0);
    EXPECT_DOUBLE_EQ(m.mean(), 0.25);
    EXPECT_NEAR(empirical_mean(m, 100000, 1), 0.25, 0.005);
    EXPECT_EQ(m.aging(), AgingClass::kMemoryless);
}

TEST(ConstantLatency, AlwaysSameValue) {
    const ConstantLatency m(1.5);
    Rng rng(2);
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.sample(rng), 1.5);
    EXPECT_EQ(m.aging(), AgingClass::kPositiveAging);
}

TEST(UniformLatency, BoundsAndMean) {
    const UniformLatency m(1.0, 3.0);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = m.sample(rng);
        EXPECT_GE(x, 1.0);
        EXPECT_LT(x, 3.0);
    }
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_EQ(m.aging(), AgingClass::kPositiveAging);
}

TEST(GammaLatency, MeanAndAgingBoundaries) {
    const GammaLatency shape2(2.0, 0.5);
    EXPECT_DOUBLE_EQ(shape2.mean(), 1.0);
    EXPECT_EQ(shape2.aging(), AgingClass::kPositiveAging);
    EXPECT_NEAR(empirical_mean(shape2, 100000, 4), 1.0, 0.01);

    const GammaLatency shape1(1.0, 2.0);
    EXPECT_EQ(shape1.aging(), AgingClass::kMemoryless);

    const GammaLatency heavy(0.5, 1.0);
    EXPECT_EQ(heavy.aging(), AgingClass::kNegativeAging);
}

TEST(WeibullLatency, MeanAndAgingBoundaries) {
    const WeibullLatency w2(2.0, 1.0);
    EXPECT_EQ(w2.aging(), AgingClass::kPositiveAging);
    EXPECT_NEAR(empirical_mean(w2, 100000, 5), w2.mean(), 0.01);

    const WeibullLatency w1(1.0, 1.0);
    EXPECT_EQ(w1.aging(), AgingClass::kMemoryless);
    EXPECT_DOUBLE_EQ(w1.mean(), 1.0);  // Γ(2) = 1

    const WeibullLatency heavy(0.5, 1.0);
    EXPECT_EQ(heavy.aging(), AgingClass::kNegativeAging);
    EXPECT_DOUBLE_EQ(heavy.mean(), 2.0);  // Γ(3) = 2
}

TEST(LogNormalLatency, MeanMatchesClosedForm) {
    const LogNormalLatency m(0.0, 0.5);
    EXPECT_NEAR(empirical_mean(m, 200000, 6), m.mean(), 0.01);
    EXPECT_EQ(m.aging(), AgingClass::kNegativeAging);
}

TEST(LatencyModel, NamesAreDescriptive) {
    EXPECT_NE(ExponentialLatency(2.0).name().find("Exponential"), std::string::npos);
    EXPECT_NE(ConstantLatency(1.0).name().find("Constant"), std::string::npos);
    EXPECT_NE(WeibullLatency(2.0, 1.0).name().find("Weibull"), std::string::npos);
}

TEST(LatencyModel, FactoryBuildsExponential) {
    const auto m = make_exponential_latency(3.0);
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->mean(), 1.0 / 3.0);
}

TEST(AgingClass, ToStringCoversAll) {
    EXPECT_STREQ(to_string(AgingClass::kMemoryless), "memoryless");
    EXPECT_STREQ(to_string(AgingClass::kPositiveAging), "positive-aging");
    EXPECT_STREQ(to_string(AgingClass::kNegativeAging), "negative-aging");
}

}  // namespace
}  // namespace papc::sim
