#include "sim/scheduler_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "support/random.hpp"

namespace papc::sim {
namespace {

using IntQueue = SchedulerQueue<int>;

std::vector<QueueKind> all_kinds() {
    return {QueueKind::kBinaryHeap, QueueKind::kCalendar, QueueKind::kLadder};
}

/// The non-reference implementations, each checked against the heap.
std::vector<QueueKind> other_kinds() {
    return {QueueKind::kCalendar, QueueKind::kLadder};
}

// ------------------------------------------------------------ kind plumbing

TEST(SchedulerQueue, FactoryBuildsRequestedKind) {
    for (const QueueKind kind : all_kinds()) {
        const auto queue = make_scheduler_queue<int>(kind);
        EXPECT_EQ(queue->kind(), kind);
        EXPECT_TRUE(queue->empty());
    }
}

TEST(SchedulerQueue, ConcreteTypesUsableWithoutFactory) {
    // The legacy sim/event_queue.hpp alias was folded into this header;
    // callers that want a concrete queue (no QueueKind dispatch) use the
    // implementation types directly.
    BinaryHeapQueue<int> heap;
    heap.push(2.0, 2);
    heap.push(1.0, 1);
    EXPECT_EQ(heap.pop().payload, 1);
    EXPECT_EQ(heap.kind(), QueueKind::kBinaryHeap);
    CalendarQueue<int> calendar;
    calendar.push(2.0, 2);
    calendar.push(1.0, 1);
    EXPECT_EQ(calendar.pop().payload, 1);
    EXPECT_EQ(calendar.kind(), QueueKind::kCalendar);
    LadderQueue<int> ladder;
    ladder.push(2.0, 2);
    ladder.push(1.0, 1);
    EXPECT_EQ(ladder.pop().payload, 1);
    EXPECT_EQ(ladder.kind(), QueueKind::kLadder);
}

TEST(SchedulerQueue, KindNamesRoundTrip) {
    for (const QueueKind kind : all_kinds()) {
        EXPECT_EQ(parse_queue_kind(to_string(kind)), kind);
    }
    EXPECT_EQ(parse_queue_kind("binary-heap"), QueueKind::kBinaryHeap);
}

// ------------------------------------------------------- ordering contract

TEST(SchedulerQueue, PopsInTimeOrder) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        q->push(3.0, 3);
        q->push(1.0, 1);
        q->push(2.0, 2);
        EXPECT_EQ(q->pop().payload, 1);
        EXPECT_EQ(q->pop().payload, 2);
        EXPECT_EQ(q->pop().payload, 3);
        EXPECT_TRUE(q->empty());
    }
}

TEST(SchedulerQueue, MassiveSameTimeBurstKeepsSeqOrder) {
    // A burst of identical times exercises the seq tie-break under heap
    // sifts and under calendar rebuilds (ties carry no width signal).
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        constexpr int kBurst = 20000;
        for (int i = 0; i < kBurst; ++i) q->push(7.25, i);
        for (int i = 0; i < kBurst; ++i) {
            const auto e = q->pop();
            ASSERT_EQ(e.payload, i) << to_string(kind);
            ASSERT_DOUBLE_EQ(e.time, 7.25);
        }
        EXPECT_TRUE(q->empty());
    }
}

TEST(SchedulerQueue, TieBurstInterleavedWithOtherTimes) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        Rng rng(11);
        // Ties at 5.0 interleaved among uniform times on both sides.
        for (int i = 0; i < 500; ++i) {
            q->push(5.0, 100000 + i);
            q->push(rng.uniform(0.0, 10.0), i);
        }
        double prev_time = -1.0;
        std::uint64_t prev_seq = 0;
        bool first = true;
        int tie_cursor = 100000;
        while (!q->empty()) {
            const auto e = q->pop();
            if (!first) {
                ASSERT_TRUE(e.time > prev_time ||
                            (e.time == prev_time && e.seq > prev_seq));
            }
            if (e.time == 5.0 && e.payload >= 100000) {
                ASSERT_EQ(e.payload, tie_cursor++);
            }
            prev_time = e.time;
            prev_seq = e.seq;
            first = false;
        }
        EXPECT_EQ(tie_cursor, 100500);
    }
}

TEST(SchedulerQueue, FarFutureOutliersDoNotDisturbOrder) {
    // Outliers several "years" beyond the dense head exercise the calendar
    // wrap + direct-search path; order must stay exact for both kinds.
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        Rng rng(13);
        for (int i = 0; i < 2000; ++i) q->push(rng.uniform(), i);
        q->push(1e9, -1);
        q->push(1e12, -2);
        q->push(5e8, -3);
        double prev = -1.0;
        std::size_t popped = 0;
        while (!q->empty()) {
            const auto e = q->pop();
            ASSERT_GE(e.time, prev);
            prev = e.time;
            ++popped;
            // Refill mid-drain with near-term events: they must still come
            // out before the parked outliers.
            if (popped == 1000) {
                for (int i = 0; i < 100; ++i) {
                    q->push(1.0 + rng.uniform(), 10000 + i);
                }
            }
        }
        EXPECT_EQ(popped, 2103U);
        EXPECT_DOUBLE_EQ(prev, 1e12);
    }
}

TEST(SchedulerQueue, PushBehindTheCursorIsPoppedFirst) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        q->push(10.0, 10);
        q->push(1.0, 1);
        EXPECT_EQ(q->pop().payload, 1);
        q->push(5.0, 5);
        q->push(0.5, 0);  // earlier than everything already popped past
        EXPECT_EQ(q->pop().payload, 0);
        EXPECT_EQ(q->pop().payload, 5);
        EXPECT_EQ(q->pop().payload, 10);
    }
}

TEST(SchedulerQueue, NextTimePeeksEarliestWithoutPopping) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        q->push(5.0, 0);
        q->push(2.0, 0);
        EXPECT_DOUBLE_EQ(q->next_time(), 2.0);
        EXPECT_EQ(q->size(), 2U);
        q->pop();
        EXPECT_DOUBLE_EQ(q->next_time(), 5.0);
    }
}

// ------------------------------------------------------------- empty edges

using SchedulerQueueDeathTest = ::testing::Test;

TEST(SchedulerQueueDeathTest, PopOnEmptyAborts) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        EXPECT_DEATH(q->pop(), "PAPC_CHECK failed");
    }
}

TEST(SchedulerQueueDeathTest, NextTimeOnEmptyAborts) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        q->push(1.0, 1);
        q->pop();
        EXPECT_DEATH(q->next_time(), "PAPC_CHECK failed");
    }
}

// -------------------------------------------------------- clear-then-reuse

TEST(SchedulerQueue, ClearThenReuseStaysOrderedAndKeepsPushedCount) {
    for (const QueueKind kind : all_kinds()) {
        const auto q = make_scheduler_queue<int>(kind);
        Rng rng(17);
        for (int i = 0; i < 5000; ++i) q->push(rng.uniform(0.0, 100.0), i);
        for (int i = 0; i < 100; ++i) q->pop();
        q->clear();
        EXPECT_TRUE(q->empty());
        EXPECT_EQ(q->size(), 0U);
        // pushed() (and hence the seq stream) survives a clear.
        EXPECT_EQ(q->pushed(), 5000U);
        for (int i = 0; i < 1000; ++i) q->push(rng.uniform(0.0, 1.0), i);
        EXPECT_EQ(q->pushed(), 6000U);
        double prev = -1.0;
        while (!q->empty()) {
            const auto e = q->pop();
            ASSERT_GE(e.time, prev);
            prev = e.time;
        }
    }
}

// ------------------------------------------------------------- reserve hint

TEST(SchedulerQueue, ReserveDoesNotChangeBehaviour) {
    for (const QueueKind kind : all_kinds()) {
        const auto plain = make_scheduler_queue<int>(kind);
        const auto hinted = make_scheduler_queue<int>(kind, 1 << 14);
        Rng rng_a(23);
        Rng rng_b(23);
        for (int i = 0; i < 3000; ++i) {
            plain->push(rng_a.uniform(), i);
            hinted->push(rng_b.uniform(), i);
        }
        while (!plain->empty()) {
            const auto a = plain->pop();
            const auto b = hinted->pop();
            ASSERT_DOUBLE_EQ(a.time, b.time);
            ASSERT_EQ(a.seq, b.seq);
            ASSERT_EQ(a.payload, b.payload);
        }
        EXPECT_TRUE(hinted->empty());
    }
}

// -------------------------------------- cross-implementation equivalence

/// Drives all implementations through the same operation tape and demands
/// byte-identical pop sequences — the contract the engine equivalence
/// (identical RunResults for a fixed seed) rests on.
void expect_identical_pop_order(std::uint64_t seed, int ops, double time_lo,
                                double time_hi, bool quantize) {
    for (const QueueKind other_kind : other_kinds()) {
        const auto heap = make_scheduler_queue<int>(QueueKind::kBinaryHeap);
        const auto other = make_scheduler_queue<int>(other_kind);
        Rng rng(seed);
        double now = 0.0;
        for (int op = 0; op < ops; ++op) {
            const bool push = heap->empty() || rng.uniform() < 0.55;
            if (push) {
                double t = now + rng.uniform(time_lo, time_hi);
                // Quantized times manufacture cross-push ties.
                if (quantize) t = std::floor(t * 8.0) / 8.0;
                heap->push(t, op);
                other->push(t, op);
            } else {
                const auto a = heap->pop();
                const auto b = other->pop();
                ASSERT_DOUBLE_EQ(a.time, b.time)
                    << "op " << op << " " << to_string(other_kind);
                ASSERT_EQ(a.seq, b.seq)
                    << "op " << op << " " << to_string(other_kind);
                ASSERT_EQ(a.payload, b.payload)
                    << "op " << op << " " << to_string(other_kind);
                now = a.time;  // advancing front, like a real simulation
            }
        }
        while (!heap->empty()) {
            const auto a = heap->pop();
            const auto b = other->pop();
            ASSERT_DOUBLE_EQ(a.time, b.time) << to_string(other_kind);
            ASSERT_EQ(a.seq, b.seq) << to_string(other_kind);
            ASSERT_EQ(a.payload, b.payload) << to_string(other_kind);
        }
        EXPECT_TRUE(other->empty());
        EXPECT_EQ(heap->pushed(), other->pushed());
    }
}

TEST(SchedulerQueueEquivalence, UniformSchedule) {
    expect_identical_pop_order(101, 20000, 0.0, 1.0, false);
}

TEST(SchedulerQueueEquivalence, QuantizedScheduleWithTies) {
    expect_identical_pop_order(102, 20000, 0.0, 0.5, true);
}

TEST(SchedulerQueueEquivalence, WideScheduleSparseBuckets) {
    expect_identical_pop_order(103, 8000, 0.0, 1000.0, false);
}

TEST(SchedulerQueueEquivalence, NarrowScheduleDenseBuckets) {
    expect_identical_pop_order(104, 20000, 0.0, 1e-4, false);
}

TEST(SchedulerQueueEquivalence, MixedScaleWithOutliers) {
    for (const QueueKind other_kind : other_kinds()) {
        const auto heap = make_scheduler_queue<int>(QueueKind::kBinaryHeap);
        const auto other = make_scheduler_queue<int>(other_kind);
        Rng rng(105);
        for (int op = 0; op < 30000; ++op) {
            const double roll = rng.uniform();
            double t;
            if (roll < 0.90) {
                t = rng.uniform(0.0, 1.0);  // dense head
            } else if (roll < 0.99) {
                t = rng.uniform(0.0, 100.0);  // mid-range
            } else {
                t = rng.uniform(1e6, 1e9);  // far-future outlier
            }
            heap->push(t, op);
            other->push(t, op);
            if (op % 3 == 0) {
                const auto a = heap->pop();
                const auto b = other->pop();
                ASSERT_DOUBLE_EQ(a.time, b.time)
                    << "op " << op << " " << to_string(other_kind);
                ASSERT_EQ(a.seq, b.seq)
                    << "op " << op << " " << to_string(other_kind);
            }
        }
        while (!heap->empty()) {
            const auto a = heap->pop();
            const auto b = other->pop();
            ASSERT_DOUBLE_EQ(a.time, b.time) << to_string(other_kind);
            ASSERT_EQ(a.seq, b.seq) << to_string(other_kind);
        }
        EXPECT_TRUE(other->empty());
    }
}

TEST(SchedulerQueueEquivalence, DrainAndRefillCycles) {
    // Repeated full drains force the calendar through shrink rebuilds and
    // cursor resets (and the ladder through top-threshold regeneration);
    // order must stay identical throughout.
    for (const QueueKind other_kind : other_kinds()) {
        const auto heap = make_scheduler_queue<int>(QueueKind::kBinaryHeap);
        const auto other = make_scheduler_queue<int>(other_kind);
        Rng rng(106);
        double base = 0.0;
        for (int cycle = 0; cycle < 6; ++cycle) {
            const int fill = 1 << (6 + cycle);  // 64 .. 2048
            for (int i = 0; i < fill; ++i) {
                const double t = base + rng.uniform(0.0, 2.0);
                heap->push(t, i);
                other->push(t, i);
            }
            while (!heap->empty()) {
                const auto a = heap->pop();
                const auto b = other->pop();
                ASSERT_DOUBLE_EQ(a.time, b.time) << to_string(other_kind);
                ASSERT_EQ(a.seq, b.seq) << to_string(other_kind);
                base = a.time;
            }
            EXPECT_TRUE(other->empty());
        }
    }
}

}  // namespace
}  // namespace papc::sim
