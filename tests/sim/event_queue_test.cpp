#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/random.hpp"

namespace papc::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
    EventQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0U);
}

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue<int> q;
    q.push(3.0, 3);
    q.push(1.0, 1);
    q.push(2.0, 2);
    EXPECT_EQ(q.pop().payload, 1);
    EXPECT_EQ(q.pop().payload, 2);
    EXPECT_EQ(q.pop().payload, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
    EventQueue<std::string> q;
    q.push(1.0, "first");
    q.push(1.0, "second");
    q.push(1.0, "third");
    EXPECT_EQ(q.pop().payload, "first");
    EXPECT_EQ(q.pop().payload, "second");
    EXPECT_EQ(q.pop().payload, "third");
}

TEST(EventQueue, NextTimePeeksEarliest) {
    EventQueue<int> q;
    q.push(5.0, 0);
    q.push(2.0, 0);
    EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
    q.pop();
    EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, InterleavedPushPop) {
    EventQueue<int> q;
    q.push(10.0, 10);
    q.push(1.0, 1);
    EXPECT_EQ(q.pop().payload, 1);
    q.push(5.0, 5);
    q.push(0.5, 0);  // earlier than everything remaining
    EXPECT_EQ(q.pop().payload, 0);
    EXPECT_EQ(q.pop().payload, 5);
    EXPECT_EQ(q.pop().payload, 10);
}

TEST(EventQueue, RandomStressIsSorted) {
    EventQueue<int> q;
    Rng rng(77);
    for (int i = 0; i < 10000; ++i) {
        q.push(rng.uniform(), i);
    }
    double prev = -1.0;
    while (!q.empty()) {
        const auto e = q.pop();
        EXPECT_GE(e.time, prev);
        prev = e.time;
    }
}

TEST(EventQueue, ClearEmptiesQueue) {
    EventQueue<int> q;
    q.push(1.0, 1);
    q.push(2.0, 2);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PushedCountsAllInsertions) {
    EventQueue<int> q;
    q.push(1.0, 1);
    q.pop();
    q.push(2.0, 2);
    EXPECT_EQ(q.pushed(), 2U);
}

TEST(EventQueue, ReserveIsTransparent) {
    // reserve(n) pre-sizes the heap storage (the simulations pass ~2
    // pending events per node up front); behaviour is unchanged.
    EventQueue<int> q;
    q.reserve(4096);
    Rng rng(5);
    for (int i = 0; i < 2048; ++i) q.push(rng.uniform(), i);
    EXPECT_EQ(q.size(), 2048U);
    double prev = -1.0;
    while (!q.empty()) {
        const auto e = q.pop();
        EXPECT_GE(e.time, prev);
        prev = e.time;
    }
}

TEST(EventQueue, IsTheBinaryHeapKind) {
    EventQueue<int> q;
    EXPECT_EQ(q.kind(), QueueKind::kBinaryHeap);
}

}  // namespace
}  // namespace papc::sim
