#!/usr/bin/env python3
"""ctest driver for papc_lint (registered as `tools_papc_lint`).

Asserts, in order:
  1. each rule fixture trips exactly its rule ID (and nothing else) —
     including the v2 whole-program rules: D7 colliding substream labels,
     D8 unsafe shard captures, and the L1 cycle / L2 upward-include tree
     fixtures linted as self-contained mini-repos via --tree,
  2. the justified-suppression fixtures lint clean (exit 0),
  3. the unjustified-suppression fixture reports SUPP only,
  4. per-directory profiles: the same D3 fixture that fails as engine
     code passes when posed as a test file (engine-only rules relaxed),
  5. --github emits well-formed GitHub annotations,
  6. --json emits a well-formed report (rule/file/line/snippet/status),
  7. a corrupted layer manifest is a hard error (exit 2) — the CI gate
     cannot be silently disabled by a bad layers.toml,
  8. the real tree (via this build's compile database) lints clean —
     the repo's determinism contracts hold with zero unexplained
     exceptions, the include graph is acyclic, and every include edge is
     layer-conformant.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

LINE_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): "
                     r"\[(?P<id>[A-Z0-9]+) [a-z\-]+\] ")
GITHUB_RE = re.compile(r"^::error file=[^,]+,line=\d+,col=\d+,"
                       r"title=papc_lint [A-Z0-9]+ \([a-z\-]+\)::")

# fixture basename -> (expected rule-ID set, expected exit code, as-dir).
# Most fixtures pose as src/sync/ files (a directory where every rule is
# in scope); the in-layer D6 fixture poses as src/fault/ because that arm
# of the rule only applies inside the fault layer itself.
FIXTURE_EXPECTATIONS = {
    "d1_raw_rng.cpp": ({"D1"}, 1, "src/sync"),
    "d2_unordered_iteration.cpp": ({"D2"}, 1, "src/sync"),
    "d3_raw_thread.cpp": ({"D3"}, 1, "src/sync"),
    "d4_wall_clock.cpp": ({"D4"}, 1, "src/sync"),
    "d5_simd.cpp": ({"D5"}, 1, "src/sync"),
    "d6_fault_hook.cpp": ({"D6"}, 1, "src/sync"),
    "d6_split_in_fault.cpp": ({"D6"}, 1, "src/fault"),
    "d6_suppressed_ok.cpp": (set(), 0, "src/sync"),
    "d7_substream_collision.cpp": ({"D7"}, 1, "src/sync"),
    "d7_suppressed_ok.cpp": (set(), 0, "src/sync"),
    "d8_shard_capture.cpp": ({"D8"}, 1, "src/sync"),
    "d8_suppressed_ok.cpp": (set(), 0, "src/sync"),
    "suppressed_ok.cpp": (set(), 0, "src/sync"),
    "suppression_missing_justification.cpp": ({"SUPP"}, 1, "src/sync"),
}

# fixture tree -> expected rule-ID set (linted whole via --tree, which
# runs the layer-graph pass against the committed layers.toml).
TREE_EXPECTATIONS = {
    "l1_cycle": {"L1"},
    "l2_upward": {"L2"},
}

# (fixture, posed directory) pairs that must lint CLEAN because the
# directory's rule profile relaxes the rule (engine-only rules do not
# apply to test code, which exercises pools/atomics on purpose).
PROFILE_EXPECTATIONS = [
    ("d3_raw_thread.cpp", "tests/support"),
    ("d2_unordered_iteration.cpp", "tests/sync"),
]

failures = []


def check(condition, message):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {message}")
    if not condition:
        failures.append(message)


def run_lint(lint, args):
    proc = subprocess.run([sys.executable, lint, *args],
                          capture_output=True, text=True, check=False)
    ids = set()
    for line in proc.stdout.splitlines():
        m = LINE_RE.match(line)
        if m:
            ids.add(m.group("id"))
    return proc, ids


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint", required=True)
    parser.add_argument("--fixtures", required=True)
    parser.add_argument("--root", required=True)
    parser.add_argument("--compdb", required=True)
    args = parser.parse_args()

    # 1-3: fixtures, each linted as if it lived in its declared directory.
    for name, (expected_ids, expected_exit,
               as_dir) in FIXTURE_EXPECTATIONS.items():
        path = f"{args.fixtures}/{name}"
        proc, ids = run_lint(args.lint,
                             ["--files", path, "--as-dir", as_dir,
                              "--root", args.root])
        check(ids == expected_ids,
              f"{name}: rule IDs {sorted(ids)} == {sorted(expected_ids)}")
        check(proc.returncode == expected_exit,
              f"{name}: exit {proc.returncode} == {expected_exit}")

    # 1b: whole-program tree fixtures (layer-graph pass).
    for tree, expected_ids in TREE_EXPECTATIONS.items():
        proc, ids = run_lint(args.lint, ["--tree", f"{args.fixtures}/{tree}"])
        check(ids == expected_ids,
              f"--tree {tree}: rule IDs {sorted(ids)} == "
              f"{sorted(expected_ids)}")
        check(proc.returncode == 1, f"--tree {tree}: exit {proc.returncode} == 1")

    # 1c: the [[allow]] escape hatch — the same upward edge fails under
    # the repo manifest and passes under a manifest that whitelists it
    # with a justified [[allow]] entry.
    allowed_tree = f"{args.fixtures}/l2_allowed"
    proc, ids = run_lint(args.lint, ["--tree", allowed_tree])
    check(proc.returncode == 1 and ids == {"L2"},
          f"l2_allowed vs repo manifest: upward edge flagged "
          f"(exit {proc.returncode}, ids {sorted(ids)})")
    proc, ids = run_lint(args.lint,
                         ["--tree", allowed_tree,
                          "--layers", f"{allowed_tree}/layers_allow.toml"])
    check(proc.returncode == 0 and not ids,
          f"l2_allowed vs [[allow]] manifest: edge whitelisted "
          f"(exit {proc.returncode}, ids {sorted(ids)})")

    # 4: per-directory profiles relax engine-only rules outside src/.
    for name, as_dir in PROFILE_EXPECTATIONS:
        proc, ids = run_lint(args.lint,
                             ["--files", f"{args.fixtures}/{name}",
                              "--as-dir", as_dir, "--root", args.root])
        check(proc.returncode == 0 and not ids,
              f"{name} as {as_dir}: engine-only rule relaxed by profile "
              f"(exit {proc.returncode}, ids {sorted(ids)})")

    # 5: GitHub annotation format on a known-violating fixture.
    proc, _ = run_lint(args.lint,
                       ["--files", f"{args.fixtures}/d1_raw_rng.cpp",
                        "--as-dir", "src/sync", "--root", args.root,
                        "--github"])
    annotations = [l for l in proc.stdout.splitlines() if l.startswith("::")]
    check(annotations != [] and all(GITHUB_RE.match(l) for l in annotations),
          "--github emits ::error annotations for every finding")

    # 6: --json report shape, on a fixture with one violation and one
    # suppressed finding (the d8 pair exercises both statuses).
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        run_lint(args.lint,
                 ["--files", f"{args.fixtures}/d8_shard_capture.cpp",
                  f"{args.fixtures}/d8_suppressed_ok.cpp",
                  "--as-dir", "src/sync", "--root", args.root,
                  "--json", report_path])
        with open(report_path, encoding="utf-8") as handle:
            report = json.load(handle)
        findings = report.get("findings", [])
        statuses = sorted({f["status"] for f in findings})
        check(report.get("tool") == "papc_lint"
              and report.get("summary", {}).get("violations") == 1
              and report.get("summary", {}).get("suppressed") == 1
              and statuses == ["suppressed", "violation"]
              and all(f["rule"] == "D8" and f["file"] and f["line"] > 0
                      and f["snippet"] for f in findings),
              f"--json report well-formed (statuses {statuses})")

    # 7: a corrupted manifest is a hard configure error, not a silent
    # pass — drop the sync layer and the schema check must refuse it
    # outright (missing paths), exit 2.
    with tempfile.TemporaryDirectory() as tmp:
        bad_manifest = os.path.join(tmp, "layers.toml")
        with open(bad_manifest, "w", encoding="utf-8") as handle:
            handle.write('[[layer]]\nname = "support"\nrank = 0\n')
        proc, _ = run_lint(args.lint,
                           ["--tree", f"{args.fixtures}/l2_upward",
                            "--layers", bad_manifest])
        check(proc.returncode == 2,
              f"corrupted layers.toml is a hard error "
              f"(exit {proc.returncode} == 2)")

    # 7b: a well-formed manifest that no longer covers the tree turns
    # every uncovered file into an L2 finding — removing a layer cannot
    # silently shrink coverage.
    with tempfile.TemporaryDirectory() as tmp:
        partial_manifest = os.path.join(tmp, "layers.toml")
        with open(partial_manifest, "w", encoding="utf-8") as handle:
            handle.write('[[layer]]\nname = "support"\nrank = 0\n'
                         'paths = ["src/support/"]\n')
        proc, ids = run_lint(args.lint,
                             ["--tree", f"{args.fixtures}/l1_cycle",
                              "--layers", partial_manifest])
        check(proc.returncode == 1 and "L2" in ids,
              f"uncovered files are L2 findings under a partial manifest "
              f"(exit {proc.returncode}, ids {sorted(ids)})")

    # 8: the real tree is clean through the compile database (all passes:
    # per-file rules, D7 substream audit, L1/L2 layer graph).
    proc, ids = run_lint(args.lint, ["--compdb", args.compdb,
                                     "--root", args.root])
    check(proc.returncode == 0,
          f"repo lints clean via compile database (exit {proc.returncode})")
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.stdout.write(proc.stderr)

    if failures:
        print(f"{len(failures)} papc_lint self-test failure(s)")
        return 1
    print("papc_lint self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
