#!/usr/bin/env python3
"""ctest driver for papc_lint (registered as `tools_papc_lint`).

Asserts, in order:
  1. each rule fixture trips exactly its rule ID (and nothing else),
  2. the justified-suppression fixture lints clean (exit 0),
  3. the unjustified-suppression fixture reports SUPP only,
  4. --github emits well-formed GitHub annotations,
  5. the real src/ tree (via this build's compile database) lints clean —
     the repo's determinism contracts hold with zero unexplained
     exceptions.
"""

import argparse
import re
import subprocess
import sys

LINE_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): "
                     r"\[(?P<id>[A-Z0-9]+) [a-z\-]+\] ")
GITHUB_RE = re.compile(r"^::error file=[^,]+,line=\d+,col=\d+,"
                       r"title=papc_lint [A-Z0-9]+ \([a-z\-]+\)::")

# fixture basename -> (expected rule-ID set, expected exit code, as-dir).
# Most fixtures pose as src/sync/ files (a directory where every rule is
# in scope); the in-layer D6 fixture poses as src/fault/ because that arm
# of the rule only applies inside the fault layer itself.
FIXTURE_EXPECTATIONS = {
    "d1_raw_rng.cpp": ({"D1"}, 1, "src/sync"),
    "d2_unordered_iteration.cpp": ({"D2"}, 1, "src/sync"),
    "d3_raw_thread.cpp": ({"D3"}, 1, "src/sync"),
    "d4_wall_clock.cpp": ({"D4"}, 1, "src/sync"),
    "d5_simd.cpp": ({"D5"}, 1, "src/sync"),
    "d6_fault_hook.cpp": ({"D6"}, 1, "src/sync"),
    "d6_split_in_fault.cpp": ({"D6"}, 1, "src/fault"),
    "d6_suppressed_ok.cpp": (set(), 0, "src/sync"),
    "suppressed_ok.cpp": (set(), 0, "src/sync"),
    "suppression_missing_justification.cpp": ({"SUPP"}, 1, "src/sync"),
}

failures = []


def check(condition, message):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {message}")
    if not condition:
        failures.append(message)


def run_lint(lint, args):
    proc = subprocess.run([sys.executable, lint, *args],
                          capture_output=True, text=True, check=False)
    ids = set()
    for line in proc.stdout.splitlines():
        m = LINE_RE.match(line)
        if m:
            ids.add(m.group("id"))
    return proc, ids


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint", required=True)
    parser.add_argument("--fixtures", required=True)
    parser.add_argument("--root", required=True)
    parser.add_argument("--compdb", required=True)
    args = parser.parse_args()

    # 1-3: fixtures, each linted as if it lived in its declared directory.
    for name, (expected_ids, expected_exit,
               as_dir) in FIXTURE_EXPECTATIONS.items():
        path = f"{args.fixtures}/{name}"
        proc, ids = run_lint(args.lint,
                             ["--files", path, "--as-dir", as_dir,
                              "--root", args.root])
        check(ids == expected_ids,
              f"{name}: rule IDs {sorted(ids)} == {sorted(expected_ids)}")
        check(proc.returncode == expected_exit,
              f"{name}: exit {proc.returncode} == {expected_exit}")

    # 4: GitHub annotation format on a known-violating fixture.
    proc, _ = run_lint(args.lint,
                       ["--files", f"{args.fixtures}/d1_raw_rng.cpp",
                        "--as-dir", "src/sync", "--root", args.root,
                        "--github"])
    annotations = [l for l in proc.stdout.splitlines() if l.startswith("::")]
    check(annotations != [] and all(GITHUB_RE.match(l) for l in annotations),
          "--github emits ::error annotations for every finding")

    # 5: the real tree is clean through the compile database.
    proc, ids = run_lint(args.lint, ["--compdb", args.compdb,
                                     "--root", args.root])
    check(proc.returncode == 0,
          f"src/ lints clean via compile database (exit {proc.returncode})")
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.stdout.write(proc.stderr)

    if failures:
        print(f"{len(failures)} papc_lint self-test failure(s)")
        return 1
    print("papc_lint self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
