// papc_lint fixture (tree mode): one half of an include cycle — trips L1.
#pragma once

#include "round_state.hpp"

namespace papc::sync {
struct CensusView {
    const RoundState* state;
};
}  // namespace papc::sync
