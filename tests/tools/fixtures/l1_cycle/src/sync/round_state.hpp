// papc_lint fixture (tree mode): the other half of the include cycle.
#pragma once

#include "census_view.hpp"

namespace papc::sync {
struct RoundState {
    CensusView view;
};
}  // namespace papc::sync
