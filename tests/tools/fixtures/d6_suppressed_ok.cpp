// papc_lint fixture: a justified D6 suppression — lints clean (exit 0).
// Diagnostics-only code may peek at the injector when the justification
// spells out why no trajectory state is touched.
#include "fault/injector.hpp"  // papc-lint: allow(D6): diagnostics-only peek

namespace papc::sync {

unsigned diagnostics_only_peek(
    const fault::Injector& injector) {  // papc-lint: allow(D6): read-only
    return static_cast<unsigned>(injector.byzantine_count());
}

}  // namespace papc::sync
