// papc_lint fixture: trips D5 (simd-hygiene) and nothing else.
// Intrinsics outside sync/simd_gather.cpp bypass the support/cpu runtime
// dispatch, so the scalar fallback (and the scalar<->SIMD equivalence
// suite) no longer covers this code path.
#include <cstdint>
#include <immintrin.h>  // D5: intrinsics header outside simd_gather.cpp

std::int64_t stray_intrinsics(std::int64_t x) {
    const __m256i lanes = _mm256_set1_epi64x(x);  // D5: raw intrinsic
    return _mm256_extract_epi64(lanes, 0);
}
