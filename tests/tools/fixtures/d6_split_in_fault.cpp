// papc_lint fixture: trips D6 (fault-hygiene) inside the fault layer.
// Rng::split() advances the parent generator, so building a fault stream
// with it would shift the engine's own tape — attaching an injector must
// be a no-op for the fault-free trajectory. Linted --as-dir src/fault.
#include "support/random.hpp"

namespace papc::fault {

support::Rng stream_that_shifts_the_engine_tape(support::Rng& parent) {
    return parent.split();  // D6: parent-advancing; use substream
}

}  // namespace papc::fault
