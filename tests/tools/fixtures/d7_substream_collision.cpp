// papc_lint fixture: two substream call sites whose label tuples can
// collide under the same parent generator — trips D7 and nothing else.
// The per-round site derives (round, 0); the serial site derives (0, 0);
// at round == 0 both children are the SAME stream, so every draw the
// serial consumer makes is correlated with round 0's message fates.
#include "support/random.hpp"

namespace papc::sync {

class CollidingStreams {
public:
    support::Rng round_stream(std::uint64_t round) const {
        return base_.substream(round, 0);
    }

    support::Rng serial_stream() const {
        return base_.substream(0, 0);
    }

private:
    support::Rng base_;
};

}  // namespace papc::sync
