// papc_lint fixture: an allow() with no justification. The D3 hit itself
// is honored (suppressed), but the bare allow() is reported as SUPP — a
// suppression is a reviewed exception, and the review lives in the
// justification string.
#include <thread>

unsigned unjustified_suppression() {
    // papc-lint: allow(D3)
    std::thread probe([] {});
    probe.join();
    return 1;
}
