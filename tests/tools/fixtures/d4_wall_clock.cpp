// papc_lint fixture: trips D4 (wall-clock) and nothing else.
// Seeding or branching on ambient state (clock, environment) makes runs
// unreproducible; a trajectory may depend only on (seed, config).
#include <chrono>
#include <cstdint>
#include <cstdlib>

std::uint64_t seed_from_ambient_state() {
    const auto now =
        std::chrono::system_clock::now();  // D4: wall clock
    std::uint64_t seed = static_cast<std::uint64_t>(
        now.time_since_epoch().count());
    if (std::getenv("PAPC_SEED") != nullptr) {  // D4: env-derived seed
        seed += 1;
    }
    return seed;
}
