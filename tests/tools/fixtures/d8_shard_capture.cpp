// papc_lint fixture: a pool-job lambda that captures by reference and
// writes captured state from inside the job body — trips D8 and nothing
// else. `total += ...` runs in completion order across workers, so the
// fold's result depends on scheduling, breaking the bit-identical merge
// contract (and without an atomic it is also a data race).
#include "support/thread_pool.hpp"

namespace papc::sync {

double racy_sum(support::ThreadPool& pool, const double* values,
                std::size_t count) {
    double total = 0.0;
    pool.parallel_for(count, [&](std::size_t task, std::size_t worker) {
        (void)worker;
        total += values[task];
    });
    return total;
}

}  // namespace papc::sync
