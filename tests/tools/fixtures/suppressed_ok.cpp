// papc_lint fixture: a justified suppression — lints clean (exit 0).
// The violating construct is real, but the allow() carries a
// justification, which is the documented escape hatch.
#include <thread>

unsigned justified_hardware_probe() {
    // papc-lint: allow(D3): startup-only probe; result never reaches run state
    std::thread probe([] {});
    probe.join();
    return 1;
}
