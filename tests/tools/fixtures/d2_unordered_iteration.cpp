// papc_lint fixture: trips D2 (unordered-iteration) and nothing else.
// Hash-order iteration feeding an accumulator is exactly the bug class
// the rule exists for: the sum below is order-independent, but the first
// key to cross a threshold (and anything like it) is not.
#include <cstdint>
#include <unordered_map>

std::uint64_t census_in_hash_order(
    const std::unordered_map<std::uint32_t, std::uint64_t>& counts) {
    std::uint64_t total = 0;
    for (const auto& entry : counts) {  // D2: implementation-defined order
        total += entry.second;
    }
    return total;
}
