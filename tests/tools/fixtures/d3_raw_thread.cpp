// papc_lint fixture: trips D3 (raw-thread) and nothing else.
// Raw threads plus an atomic accumulator merge shard results in
// completion order — floating-point and tie-break results then depend on
// scheduling, which breaks the bit-identical-at-any-thread-count contract.
#include <atomic>
#include <cstdint>
#include <thread>

std::uint64_t completion_order_merge(std::uint64_t n) {
    std::atomic<std::uint64_t> total{0};
    std::thread worker([&] {  // D3: raw std::thread
        total.fetch_add(n);   // D3: completion-order accumulation
    });
    worker.join();
    return total.load();
}
