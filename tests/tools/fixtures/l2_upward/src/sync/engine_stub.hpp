// papc_lint fixture (tree mode): the engine-layer header that the
// support-layer file below it illegally includes.
#pragma once

namespace papc::sync {
inline int stub() { return 42; }
}  // namespace papc::sync
