// papc_lint fixture (tree mode): the support layer (rank 0) reaching UP
// into the sync engine layer (rank 60) — trips L2.
#pragma once

#include "sync/engine_stub.hpp"

namespace papc::support {
inline int helper() { return papc::sync::stub(); }
}  // namespace papc::support
