// papc_lint fixture: trips D6 (fault-hygiene) and nothing else.
// A round kernel reaching for the injector directly means fault decisions
// leak out of the sanctioned delivery/round/pair interposition points —
// the per-(window, shard) substream labeling can no longer be audited in
// one place. Linted --as-dir src/sync: sanctioned files are named
// explicitly, so a stray kernel file is out of bounds.
#include "fault/injector.hpp"

namespace papc::sync {

unsigned kernel_with_inline_faults(fault::Injector& injector,  // D6
                                   Rng& rng) {
    const fault::MessageFate fate = injector.draw_fate(rng);  // D6
    return fate.drop ? 0U : 1U;
}

}  // namespace papc::sync
