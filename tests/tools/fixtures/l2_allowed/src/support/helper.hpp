// papc_lint fixture (tree mode): an upward include that is whitelisted by
// the [[allow]] entry in layers_allow.toml — clean under that manifest.
#pragma once

#include "sync/stub.hpp"

namespace papc::support {
inline int helper() { return papc::sync::stub(); }
}  // namespace papc::support
