// papc_lint fixture (tree mode): the higher-layer header reached through
// the whitelisted edge.
#pragma once

namespace papc::sync {
inline int stub() { return 7; }
}  // namespace papc::sync
