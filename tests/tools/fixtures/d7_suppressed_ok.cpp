// papc_lint fixture: the same colliding substream pair as
// d7_substream_collision.cpp, cleared two ways — lints clean (exit 0).
//
//   * the (kRoundTag, round) / (kSerialTag, 0) pair is disjoint by
//     CONSTANT RESOLUTION: the first label component differs as resolved
//     constexpr constants, so no suppression is needed at all;
//   * the genuinely-colliding (round, 0) / (0, 0) pair carries a
//     justified suppression on one site, which clears the whole pair.
#include "support/random.hpp"

namespace papc::sync {

inline constexpr std::uint64_t kRoundTag = 1;
inline constexpr std::uint64_t kSerialTag = 2;

class DisjointStreams {
public:
    support::Rng round_stream(std::uint64_t round) const {
        return base_.substream(kRoundTag, round);
    }

    support::Rng serial_stream() const {
        return base_.substream(kSerialTag, 0);
    }

    support::Rng replay_stream(std::uint64_t round) const {
        return replay_base_.substream(round, 0);
    }

    support::Rng replay_serial_stream() const {
        // papc-lint: allow(D7): replay runs are single-consumer — a replay
        // uses either the per-round or the serial stream, never both.
        return replay_base_.substream(0, 0);
    }

private:
    support::Rng base_;
    support::Rng replay_base_;
};

}  // namespace papc::sync
