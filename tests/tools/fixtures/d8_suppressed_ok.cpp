// papc_lint fixture: shard-capture patterns that lint clean (exit 0).
//
//   * the parameter-indexed slot write (per_task[task] = ...) is the
//     sanctioned per-task result pattern — each task owns its slot, the
//     fold over slots happens after the barrier in index order;
//   * locals and lambda parameters are shard-private by construction;
//   * the deliberately-racy histogram fold carries a justified
//     suppression (here standing in for a provably commutative fold
//     guarded elsewhere).
#include "support/thread_pool.hpp"

#include <vector>

namespace papc::sync {

void per_task_slots(support::ThreadPool& pool, std::vector<double>& per_task,
                    const double* values) {
    pool.parallel_for(per_task.size(),
                      [&](std::size_t task, std::size_t worker) {
                          (void)worker;
                          double scaled = values[task] * 2.0;
                          per_task[task] = scaled;
                      });
}

void suppressed_fold(support::ThreadPool& pool, double& total,
                     const double* values, std::size_t count) {
    pool.parallel_for(count, [&](std::size_t task, std::size_t worker) {
        (void)worker;
        // papc-lint: allow(D8): fixture stand-in for a commutative fold
        // whose determinism is pinned by an equivalence test.
        total += values[task];
    });
}

}  // namespace papc::sync
