// papc_lint fixture: trips D1 (raw-rng) and nothing else.
// A private engine means draws that do not derive from Rng::substream —
// trajectories stop being a pure function of (seed, config).
#include <random>

unsigned draw_without_substream() {
    std::mt19937 engine(12345);  // D1: direct engine construction
    std::random_device entropy;  // D1: nondeterministic device
    return static_cast<unsigned>(engine()) + entropy();
}
