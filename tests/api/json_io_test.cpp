/// \file json_io_test.cpp
/// Round-trip and golden-file tests for the JSON emitters: core::RunResult,
/// runner::ExperimentOutcome, api::ScenarioResult and api::SweepResult.

#include <gtest/gtest.h>

#include <string>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/run_result.hpp"
#include "runner/experiment.hpp"
#include "support/json_value.hpp"
#include "support/json_writer.hpp"

namespace papc {
namespace {

core::RunResult sample_result() {
    core::RunResult r;
    r.converged = true;
    r.winner = 3;
    r.plurality_won = true;
    r.epsilon_time = 61.0006279198364;
    r.consensus_time = 86.00020496796567;
    r.end_time = 86.00020496796567;
    r.steps = 399183;
    r.plurality_fraction = TimeSeries("plurality-fraction");
    r.plurality_fraction.record(0.25, 0.474);
    r.plurality_fraction.record(0.5002010179377336, 0.4735);
    r.plurality_fraction.record(86.0, 1.0);
    return r;
}

TEST(RunResultJson, RoundTripsExactly) {
    const core::RunResult original = sample_result();
    const std::string text = core::to_json(original);
    const JsonParseResult parsed = parse_json(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const core::RunResult restored = core::run_result_from_json(parsed.value);
    // The legacy text format round-trips exactly; the JSON path must agree
    // with it bit for bit (doubles use round-trip precision).
    EXPECT_EQ(core::serialize(restored), core::serialize(original));
}

TEST(RunResultJson, UnconvergedSentinelsSurvive) {
    core::RunResult r;
    r.epsilon_time = -1.0;
    r.consensus_time = -1.0;
    r.end_time = 12.5;
    r.steps = 7;
    const JsonParseResult parsed = parse_json(core::to_json(r));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const core::RunResult restored = core::run_result_from_json(parsed.value);
    EXPECT_DOUBLE_EQ(restored.epsilon_time, -1.0);
    EXPECT_DOUBLE_EQ(restored.consensus_time, -1.0);
    EXPECT_FALSE(restored.converged);
    EXPECT_TRUE(restored.plurality_fraction.empty());
}

TEST(RunResultJson, MissingMembersKeepDefaults) {
    const JsonParseResult parsed = parse_json(R"({"steps": 5})");
    ASSERT_TRUE(parsed.ok());
    const core::RunResult restored = core::run_result_from_json(parsed.value);
    EXPECT_EQ(restored.steps, 5U);
    EXPECT_FALSE(restored.converged);
    EXPECT_DOUBLE_EQ(restored.epsilon_time, -1.0);
}

TEST(RunResultJson, GoldenDocument) {
    // Pins the exact on-disk format. Changing this string is an API break
    // for downstream JSON consumers — bump deliberately.
    core::RunResult r;
    r.converged = true;
    r.winner = 1;
    r.plurality_won = false;
    r.epsilon_time = 2.5;
    r.consensus_time = 3.0;
    r.end_time = 4.0;
    r.steps = 10;
    r.plurality_fraction = TimeSeries("s");
    r.plurality_fraction.record(0.5, 0.75);
    const std::string expected =
        "{\n"
        "  \"converged\": true,\n"
        "  \"winner\": 1,\n"
        "  \"plurality_won\": false,\n"
        "  \"epsilon_time\": 2.5,\n"
        "  \"consensus_time\": 3,\n"
        "  \"end_time\": 4,\n"
        "  \"steps\": 10,\n"
        "  \"series\": {\n"
        "    \"name\": \"s\",\n"
        "    \"points\": [\n"
        "      [\n"
        "        0.5,\n"
        "        0.75\n"
        "      ]\n"
        "    ]\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(core::to_json(r), expected);
}

TEST(ExperimentOutcomeJson, EmitsEveryMetricSummary) {
    const runner::ExperimentOutcome outcome = runner::run_experiment(
        [](std::uint64_t seed) {
            runner::TrialMetrics m;
            m["value"] = static_cast<double>(seed % 97);
            m["constant"] = 1.5;
            return m;
        },
        8, 3);
    JsonWriter writer;
    runner::write_json(writer, outcome);
    const JsonParseResult parsed = parse_json(writer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_DOUBLE_EQ(parsed.value.at("repetitions").as_number(), 8.0);
    const JsonValue& metrics = parsed.value.at("metrics");
    ASSERT_NE(metrics.find("value"), nullptr);
    const JsonValue& constant = metrics.at("constant");
    EXPECT_DOUBLE_EQ(constant.at("count").as_number(), 8.0);
    EXPECT_DOUBLE_EQ(constant.at("mean").as_number(), 1.5);
    EXPECT_DOUBLE_EQ(constant.at("stddev").as_number(), 0.0);
    for (const char* key :
         {"count", "mean", "stddev", "min", "max", "p10", "p50", "p90",
          "p99"}) {
        EXPECT_NE(constant.find(key), nullptr) << key;
    }
}

TEST(ScenarioResultJson, CarriesScenarioSeedResultAndExtras) {
    api::Scenario scenario;
    scenario.protocol = "sequential";
    scenario.n = 128;
    scenario.k = 2;
    scenario.alpha = 2.5;
    scenario.record_series = false;
    const api::ScenarioResult result = api::run(scenario, 13);
    JsonWriter writer;
    api::write_json(writer, scenario, 13, result);
    const JsonParseResult parsed = parse_json(writer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.at("scenario").at("protocol").as_string(),
              "sequential");
    EXPECT_DOUBLE_EQ(parsed.value.at("seed").as_number(), 13.0);
    const core::RunResult restored =
        core::run_result_from_json(parsed.value.at("result"));
    EXPECT_EQ(core::serialize(restored), core::serialize(result.run));
    for (const auto& [name, value] : result.extras) {
        EXPECT_DOUBLE_EQ(parsed.value.at("extras").number_or(name, -1e99),
                         value)
            << name;
    }
}

TEST(SweepResultJson, TableRoundTripsThroughTheParser) {
    api::Sweep sweep;
    sweep.base.protocol = "two-choices";
    sweep.base.n = 128;
    sweep.base.alpha = 2.5;
    sweep.base.record_series = false;
    sweep.axes = api::parse_sweep_spec("n=128,256;k=2..3").axes;
    sweep.reps = 2;
    sweep.base_seed = 99;
    const api::SweepResult result = api::run_sweep(sweep);

    JsonWriter writer;
    api::write_json(writer, result);
    const JsonParseResult parsed = parse_json(writer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    const JsonValue& doc = parsed.value;
    EXPECT_EQ(doc.at("base").at("protocol").as_string(), "two-choices");
    ASSERT_EQ(doc.at("axes").size(), 2U);
    EXPECT_EQ(doc.at("axes")[0].as_string(), "n");
    EXPECT_DOUBLE_EQ(doc.at("reps").as_number(), 2.0);
    ASSERT_EQ(doc.at("cells").size(), result.cells.size());
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const JsonValue& cell = doc.at("cells")[i];
        for (const auto& [field, value] : result.cells[i].coordinates) {
            EXPECT_EQ(cell.at("coordinates").at(field).as_string(), value);
        }
        EXPECT_DOUBLE_EQ(cell.at("outcome").at("repetitions").as_number(),
                         2.0);
        EXPECT_DOUBLE_EQ(
            cell.at("outcome").at("metrics").at("steps").at("mean").as_number(),
            result.cells[i].outcome.mean("steps"));
    }
}

}  // namespace
}  // namespace papc
