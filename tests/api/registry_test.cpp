#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "core/run_result.hpp"

namespace papc::api {
namespace {

/// A scenario small enough that every family converges in well under a
/// second, yet large enough that the dynamics are non-trivial.
Scenario tiny_scenario(const std::string& protocol, std::uint32_t k) {
    Scenario s;
    s.protocol = protocol;
    // The multi-leader protocol needs enough nodes for clusters to reach
    // the derived participation floor; every other family is happy small.
    s.n = protocol == "multi" ? 1024 : 256;
    s.k = k;
    s.alpha = 2.5;
    s.max_time = 600.0;
    s.record_series = false;
    return s;
}

TEST(ProtocolRegistry, EveryProtocolRunsATinyScenarioToAValidResult) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::vector<std::string> names = registry.names();
    ASSERT_GE(names.size(), 12U);
    for (const std::string& name : names) {
        const ProtocolInfo* info = registry.find(name);
        ASSERT_NE(info, nullptr) << name;
        const Scenario scenario = tiny_scenario(name, info->min_k);
        ASSERT_TRUE(registry.check(scenario).empty()) << name;
        const ScenarioResult result = registry.run(scenario, 2020);
        EXPECT_TRUE(core::consistent(result.run)) << name;
        EXPECT_GT(result.run.steps, 0U) << name;
        EXPECT_GE(result.run.end_time, 0.0) << name;
        EXPECT_LT(result.run.winner, scenario.k) << name;
        // With bias 2.5 at n=256 every protocol here actually decides.
        EXPECT_TRUE(result.run.converged) << name;
    }
}

TEST(ProtocolRegistry, ExtrasMatchTheDeclaredMetadataExactly) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const ProtocolInfo* info = registry.find(name);
        const ScenarioResult result =
            registry.run(tiny_scenario(name, info->min_k), 7);
        std::set<std::string> declared(info->extra_metrics.begin(),
                                       info->extra_metrics.end());
        ASSERT_EQ(declared.size(), info->extra_metrics.size())
            << name << ": duplicate extra_metrics entry";
        std::set<std::string> produced;
        for (const auto& [metric, value] : result.extras) {
            (void)value;
            produced.insert(metric);
        }
        EXPECT_EQ(produced, declared) << name;
    }
}

TEST(ProtocolRegistry, NamesAreSortedAndFamiliesKnown) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::vector<std::string> names = registry.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    const std::set<std::string> families = {"sync", "population", "async",
                                            "cluster"};
    std::set<std::string> seen;
    for (const std::string& name : names) {
        seen.insert(registry.find(name)->family);
    }
    EXPECT_EQ(seen, families);  // every engine family is reachable
}

TEST(ProtocolRegistry, CheckRejectsUnknownProtocolAndBadK) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    Scenario s = tiny_scenario("does-not-exist", 2);
    EXPECT_FALSE(registry.check(s).empty());

    s = tiny_scenario("pp-3-state", 3);  // two-opinion protocol, k = 3
    const std::vector<std::string> problems = registry.check(s);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems.front().find("requires k"), std::string::npos);
}

TEST(ProtocolRegistry, WrapperDoesNotPerturbTheAsyncRngStream) {
    // api::run("async") must be bit-identical to the direct engine call —
    // the API layer wraps, it must not re-derive seeds differently.
    Scenario s = tiny_scenario("async", 4);
    s.record_series = true;
    const ScenarioResult via_api = run(s, 99);

    async::AsyncConfig config;
    config.lambda = s.lambda;
    config.alpha_hint = std::max(s.alpha, 1.05);
    config.epsilon = s.epsilon;
    config.max_time = s.max_time;
    config.sample_interval = s.sample_interval;
    config.record_series = true;
    config.queue_kind = s.queue_kind;
    const async::AsyncResult direct =
        async::run_single_leader(s.n, s.k, s.alpha, config, 99);

    EXPECT_EQ(core::serialize(via_api.run),
              core::serialize(static_cast<const core::RunResult&>(direct)));
    EXPECT_EQ(via_api.extras.at("exchanges"),
              static_cast<double>(direct.exchanges));
    EXPECT_EQ(via_api.extras.at("steps_per_unit"), direct.steps_per_unit);
}

TEST(ProtocolRegistry, WrapperDoesNotPerturbTheClusterRngStream) {
    Scenario s = tiny_scenario("multi", 3);
    const ScenarioResult via_api = run(s, 41);

    cluster::ClusterConfig config;
    config.lambda = s.lambda;
    config.alpha_hint = std::max(s.alpha, 1.05);
    config.epsilon = s.epsilon;
    config.max_time = s.max_time;
    config.sample_interval = s.sample_interval;
    config.record_series = false;
    config.queue_kind = s.queue_kind;
    const cluster::MultiLeaderResult direct =
        cluster::run_multi_leader(s.n, s.k, s.alpha, config, 41);

    EXPECT_EQ(core::serialize(via_api.run),
              core::serialize(static_cast<const core::RunResult&>(direct)));
    EXPECT_EQ(via_api.extras.at("clustering_time"), direct.clustering_time);
}

TEST(ProtocolRegistry, SameSeedSameResultAcrossCalls) {
    const Scenario s = tiny_scenario("validated", 3);
    const ScenarioResult a = run(s, 5);
    const ScenarioResult b = run(s, 5);
    EXPECT_EQ(core::serialize(a.run), core::serialize(b.run));
    EXPECT_EQ(a.extras, b.extras);
}

TEST(ProtocolRegistry, WorkloadsFlowThroughToTheEngines) {
    // A uniform workload (alpha irrelevant) must behave differently from
    // the biased default and still produce a consistent result.
    Scenario s = tiny_scenario("two-choices", 4);
    s.workload = Workload::kUniform;
    const ScenarioResult r = run(s, 11);
    EXPECT_TRUE(core::consistent(r.run));
    Scenario z = tiny_scenario("pp-undecided", 4);
    z.workload = Workload::kZipf;
    const ScenarioResult rz = run(z, 11);
    EXPECT_TRUE(core::consistent(rz.run));
}

TEST(ProtocolRegistry, CustomProtocolsCanRegister) {
    ProtocolRegistry& registry = ProtocolRegistry::instance();
    if (registry.find("test-custom") == nullptr) {
        ProtocolInfo info;
        info.name = "test-custom";
        info.family = "sync";
        info.description = "registration test stub";
        info.extra_metrics = {"answer"};
        registry.register_protocol(
            info, [](const Scenario&, std::uint64_t) {
                ScenarioResult out;
                out.run.converged = true;
                out.run.steps = 1;
                out.extras = {{"answer", 42.0}};
                return out;
            });
    }
    Scenario s = tiny_scenario("test-custom", 2);
    const ScenarioResult r = run(s, 1);
    EXPECT_EQ(r.extras.at("answer"), 42.0);
}

}  // namespace
}  // namespace papc::api
