#include "api/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace papc::api {
namespace {

// ------------------------------------------------------------ spec parsing

TEST(SweepSpec, ParsesListsAndRanges) {
    const SweepSpecParse parsed = parse_sweep_spec("n=1000,10000;k=2..8");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_EQ(parsed.axes.size(), 2U);
    EXPECT_EQ(parsed.axes[0].field, "n");
    EXPECT_EQ(parsed.axes[0].values,
              (std::vector<std::string>{"1000", "10000"}));
    EXPECT_EQ(parsed.axes[1].field, "k");
    EXPECT_EQ(parsed.axes[1].values,
              (std::vector<std::string>{"2", "3", "4", "5", "6", "7", "8"}));
}

TEST(SweepSpec, ParsesSteppedRangesAndMixedItems) {
    const SweepSpecParse parsed =
        parse_sweep_spec("n=512,1024..4096..1024;alpha=1.5,2.0");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.axes[0].values,
              (std::vector<std::string>{"512", "1024", "2048", "3072", "4096"}));
    EXPECT_EQ(parsed.axes[1].values,
              (std::vector<std::string>{"1.5", "2.0"}));
}

TEST(SweepSpec, ParsesNonNumericAxes) {
    const SweepSpecParse parsed =
        parse_sweep_spec("protocol=sync,two-choices;queue=heap,calendar");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.axes[0].values,
              (std::vector<std::string>{"sync", "two-choices"}));
    EXPECT_EQ(parsed.axes[1].values,
              (std::vector<std::string>{"heap", "calendar"}));
}

TEST(SweepSpec, RangeAtInt64MaxTerminates) {
    // Regression: the naive `v <= hi` loop overflowed (UB, infinite loop)
    // when hi == INT64_MAX; the count-based loop must produce exactly the
    // two values.
    const SweepSpecParse parsed = parse_sweep_spec(
        "n=9223372036854775806..9223372036854775807");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.axes[0].values,
              (std::vector<std::string>{"9223372036854775806",
                                        "9223372036854775807"}));
}

TEST(SweepSpec, OversizedRangesAreRejectedNotMaterialized) {
    // A fat-fingered range must error out before allocating anything.
    const SweepSpecParse parsed = parse_sweep_spec("n=1..10000000000");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("limit"), std::string::npos);
    EXPECT_TRUE(parse_sweep_spec("n=0..9223372036854775807..2").ok() ==
                false);
}

TEST(SweepSpec, RejectsMalformedSpecs) {
    EXPECT_FALSE(parse_sweep_spec("").ok());
    EXPECT_FALSE(parse_sweep_spec("n").ok());
    EXPECT_FALSE(parse_sweep_spec("=5").ok());
    EXPECT_FALSE(parse_sweep_spec("n=").ok());
    EXPECT_FALSE(parse_sweep_spec("n=1,,2").ok());
    EXPECT_FALSE(parse_sweep_spec("n=5..2").ok());
    EXPECT_FALSE(parse_sweep_spec("n=1..9..0").ok());
    EXPECT_FALSE(parse_sweep_spec("n=a..b").ok());
    EXPECT_FALSE(parse_sweep_spec("n=1;n=2").ok());
}

// -------------------------------------------------------------- expansion

TEST(SweepExpand, CartesianProductCountsAndOrder) {
    Sweep sweep;
    sweep.axes = parse_sweep_spec("n=100,200,300;k=2..3;alpha=1.5,2.5").axes;
    std::vector<SweepCell> cells;
    ASSERT_EQ(expand(sweep, &cells), "");
    ASSERT_EQ(cells.size(), 3U * 2U * 2U);
    // Last axis fastest.
    EXPECT_EQ(cells[0].coordinates,
              (std::vector<std::pair<std::string, std::string>>{
                  {"n", "100"}, {"k", "2"}, {"alpha", "1.5"}}));
    EXPECT_EQ(cells[1].coordinates.back().second, "2.5");
    EXPECT_EQ(cells[11].coordinates,
              (std::vector<std::pair<std::string, std::string>>{
                  {"n", "300"}, {"k", "3"}, {"alpha", "2.5"}}));
    // The scenarios actually carry the coordinates.
    EXPECT_EQ(cells[11].scenario.n, 300U);
    EXPECT_EQ(cells[11].scenario.k, 3U);
    EXPECT_DOUBLE_EQ(cells[11].scenario.alpha, 2.5);
    // Un-swept fields keep the base value.
    EXPECT_EQ(cells[11].scenario.protocol, sweep.base.protocol);
}

TEST(SweepExpand, NoAxesMeansOneBaseCell) {
    Sweep sweep;
    sweep.base.n = 777;
    std::vector<SweepCell> cells;
    ASSERT_EQ(expand(sweep, &cells), "");
    ASSERT_EQ(cells.size(), 1U);
    EXPECT_EQ(cells[0].scenario.n, 777U);
    EXPECT_TRUE(cells[0].coordinates.empty());
}

TEST(SweepExpand, ReportsBadFieldOrValue) {
    Sweep sweep;
    sweep.axes = {{"lamda", {"1"}}};  // typo'd field name
    std::vector<SweepCell> cells;
    EXPECT_NE(expand(sweep, &cells), "");
    sweep.axes = {{"n", {"12", "snail"}}};
    EXPECT_NE(expand(sweep, &cells), "");
}

// -------------------------------------------------------------- execution

TEST(SweepRun, RunsEveryCellWithPerCellReps) {
    Sweep sweep;
    sweep.base.protocol = "two-choices";
    sweep.base.n = 128;
    sweep.base.alpha = 2.5;
    sweep.base.record_series = false;
    sweep.axes = parse_sweep_spec("n=128,256;k=2..3").axes;
    sweep.reps = 3;
    sweep.base_seed = 17;
    const SweepResult result = run_sweep(sweep);

    EXPECT_EQ(result.axis_names, (std::vector<std::string>{"n", "k"}));
    EXPECT_EQ(result.reps, 3U);
    ASSERT_EQ(result.cells.size(), 4U);
    for (const SweepCell& cell : result.cells) {
        EXPECT_EQ(cell.outcome.repetitions, 3U);
        // The unified metrics are always present with count == reps.
        EXPECT_EQ(cell.outcome.count("steps"), 3U);
        EXPECT_EQ(cell.outcome.count("converged"), 3U);
        EXPECT_GT(cell.outcome.mean("steps"), 0.0);
    }
}

TEST(SweepRun, ExtrasJoinTheCellMetrics) {
    Sweep sweep;
    sweep.base.protocol = "async";
    sweep.base.n = 128;
    sweep.base.alpha = 2.5;
    sweep.base.k = 2;
    sweep.base.record_series = false;
    sweep.reps = 2;
    const SweepResult result = run_sweep(sweep);
    ASSERT_EQ(result.cells.size(), 1U);
    EXPECT_EQ(result.cells[0].outcome.count("exchanges"), 2U);
    EXPECT_GT(result.cells[0].outcome.mean("steps_per_unit"), 0.0);
}

TEST(SweepRun, DeterministicAcrossThreadCounts) {
    Sweep sweep;
    sweep.base.protocol = "3-majority";
    sweep.base.n = 128;
    sweep.base.alpha = 2.0;
    sweep.base.record_series = false;
    sweep.axes = parse_sweep_spec("k=2..3").axes;
    sweep.reps = 4;
    sweep.base_seed = 23;
    sweep.threads = 1;
    const SweepResult serial = run_sweep(sweep);
    sweep.threads = 4;
    const SweepResult threaded = run_sweep(sweep);
    ASSERT_EQ(serial.cells.size(), threaded.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].outcome.mean("steps"),
                  threaded.cells[i].outcome.mean("steps"))
            << i;
        EXPECT_EQ(serial.cells[i].outcome.mean("consensus_time"),
                  threaded.cells[i].outcome.mean("consensus_time"))
            << i;
    }
}

TEST(SweepRun, ProtocolItselfCanBeAnAxis) {
    Sweep sweep;
    sweep.base.n = 128;
    sweep.base.k = 2;
    sweep.base.alpha = 2.5;
    sweep.base.record_series = false;
    sweep.axes = parse_sweep_spec("protocol=two-choices,pp-undecided").axes;
    sweep.reps = 2;
    const SweepResult result = run_sweep(sweep);
    ASSERT_EQ(result.cells.size(), 2U);
    EXPECT_EQ(result.cells[0].scenario.protocol, "two-choices");
    EXPECT_EQ(result.cells[1].scenario.protocol, "pp-undecided");
    // Family extras differ per cell: only the population cell reports
    // undecided_final.
    EXPECT_EQ(result.cells[0].outcome.count("undecided_final"), 0U);
    EXPECT_EQ(result.cells[1].outcome.count("undecided_final"), 2U);
}

}  // namespace
}  // namespace papc::api
