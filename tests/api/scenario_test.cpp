#include "api/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/json_value.hpp"

namespace papc::api {
namespace {

bool mentions(const std::vector<std::string>& problems,
              const std::string& needle) {
    return std::any_of(problems.begin(), problems.end(),
                       [&needle](const std::string& p) {
                           return p.find(needle) != std::string::npos;
                       });
}

TEST(Scenario, DefaultsAreValid) {
    EXPECT_TRUE(validate(Scenario{}).empty());
}

TEST(Scenario, ValidationCatchesEachBadKnob) {
    Scenario s;
    s.n = 1;
    s.k = 1;
    s.alpha = 0.5;
    s.lambda = 0.0;
    s.msg_rate = -1.0;
    s.gamma = 1.5;
    s.epsilon = 1.0;
    s.zipf_s = 0.0;
    s.tail_fraction = 1.0;
    s.max_time = 0.0;
    s.sample_interval = 0.0;
    const std::vector<std::string> problems = validate(s);
    EXPECT_TRUE(mentions(problems, "n must"));
    EXPECT_TRUE(mentions(problems, "k must"));
    EXPECT_TRUE(mentions(problems, "alpha"));
    EXPECT_TRUE(mentions(problems, "lambda"));
    EXPECT_TRUE(mentions(problems, "msg-rate"));
    EXPECT_TRUE(mentions(problems, "gamma"));
    EXPECT_TRUE(mentions(problems, "epsilon"));
    EXPECT_TRUE(mentions(problems, "zipf-s"));
    EXPECT_TRUE(mentions(problems, "tail-fraction"));
    EXPECT_TRUE(mentions(problems, "max-time"));
    EXPECT_TRUE(mentions(problems, "sample-interval"));
}

TEST(Scenario, GapMustStayBelowN) {
    Scenario s;
    s.n = 100;
    s.gap = 100;
    EXPECT_TRUE(mentions(validate(s), "gap"));
    s.gap = 99;
    EXPECT_TRUE(validate(s).empty());
    s.gap = 0;  // 0 = derive n/10
    EXPECT_TRUE(validate(s).empty());
}

TEST(Scenario, WorkloadNamesRoundTrip) {
    for (const Workload w :
         {Workload::kBiased, Workload::kTwoFrontRunners, Workload::kAdditiveGap,
          Workload::kUniform, Workload::kZipf}) {
        Workload parsed = Workload::kBiased;
        ASSERT_TRUE(try_parse_workload(to_string(w), &parsed));
        EXPECT_EQ(parsed, w);
    }
    Workload unused = Workload::kBiased;
    EXPECT_FALSE(try_parse_workload("nope", &unused));
}

TEST(Scenario, SetFieldRoundTripsEveryField) {
    // set(get(x)) is the identity on every field: the canonical string
    // forms and the parsers agree.
    Scenario modified;
    ASSERT_TRUE(set_field(modified, "protocol", "multi").empty());
    ASSERT_TRUE(set_field(modified, "n", "4096").empty());
    ASSERT_TRUE(set_field(modified, "k", "7").empty());
    ASSERT_TRUE(set_field(modified, "alpha", "2.25").empty());
    ASSERT_TRUE(set_field(modified, "workload", "zipf").empty());
    ASSERT_TRUE(set_field(modified, "zipf-s", "1.5").empty());
    ASSERT_TRUE(set_field(modified, "gap", "11").empty());
    ASSERT_TRUE(set_field(modified, "tail-fraction", "0.3").empty());
    ASSERT_TRUE(set_field(modified, "lambda", "2").empty());
    ASSERT_TRUE(set_field(modified, "msg-rate", "3.5").empty());
    ASSERT_TRUE(set_field(modified, "gamma", "0.4").empty());
    ASSERT_TRUE(set_field(modified, "epsilon", "0.05").empty());
    ASSERT_TRUE(set_field(modified, "max-steps", "123").empty());
    ASSERT_TRUE(set_field(modified, "max-time", "77.5").empty());
    ASSERT_TRUE(set_field(modified, "record-series", "false").empty());
    ASSERT_TRUE(set_field(modified, "record-every", "9").empty());
    ASSERT_TRUE(set_field(modified, "sample-interval", "0.5").empty());
    ASSERT_TRUE(set_field(modified, "queue", "calendar").empty());

    for (const std::string& field : scenario_field_names()) {
        Scenario copy;
        const std::string rendered = get_field(modified, field);
        ASSERT_TRUE(set_field(copy, field, rendered).empty())
            << field << " = " << rendered;
        EXPECT_EQ(get_field(copy, field), rendered) << field;
    }
    EXPECT_EQ(modified.queue_kind, sim::QueueKind::kCalendar);
    EXPECT_EQ(modified.workload, Workload::kZipf);
    EXPECT_FALSE(modified.record_series);
}

TEST(Scenario, SetFieldRejectsUnknownFieldAndBadValues) {
    Scenario s;
    EXPECT_NE(set_field(s, "lamda", "2"), "");  // the classic typo
    EXPECT_NE(set_field(s, "n", "ten"), "");
    EXPECT_NE(set_field(s, "n", "-5"), "");
    EXPECT_NE(set_field(s, "n", "10x"), "");
    EXPECT_NE(set_field(s, "alpha", ""), "");
    EXPECT_NE(set_field(s, "workload", "zipfian"), "");
    EXPECT_NE(set_field(s, "queue", "fifo"), "");
    EXPECT_NE(set_field(s, "record-series", "maybe"), "");
    // Failed sets leave the scenario untouched.
    EXPECT_EQ(s.n, Scenario{}.n);
    EXPECT_EQ(s.queue_kind, Scenario{}.queue_kind);
}

TEST(Scenario, FieldTableIsComplete) {
    const std::vector<std::string>& names = scenario_field_names();
    // +threads in PR 5, +window in PR 6, +9 fault knobs in PR 9.
    EXPECT_EQ(names.size(), 29U);
    for (const std::string& field : names) {
        EXPECT_FALSE(field_help(field).empty()) << field;
        EXPECT_FALSE(get_field(Scenario{}, field).empty()) << field;
    }
}

TEST(Scenario, JsonEmitsEveryField) {
    Scenario s;
    s.protocol = "validated";
    s.n = 123;
    JsonWriter writer;
    write_json(writer, s);
    const JsonParseResult parsed = parse_json(writer.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.at("protocol").as_string(), "validated");
    EXPECT_DOUBLE_EQ(parsed.value.at("n").as_number(), 123.0);
    for (const std::string& field : scenario_field_names()) {
        EXPECT_NE(parsed.value.find(field), nullptr) << field;
    }
}

}  // namespace
}  // namespace papc::api
