#!/usr/bin/env python3
"""papc_lint — repo-specific determinism lint for papc.

Every engine in this repo promises fixed-seed, bit-identical trajectories
across thread counts, queue kinds, and scalar/SIMD kernels. Those contracts
are pinned by runtime equivalence tests, but nothing in the compiler stops
new code from quietly breaking them: iterating an unordered_map into a
result, constructing a private std::mt19937, or merging shard state in
pool-completion order. This tool encodes the contracts as machine-checked
rules:

  D1 raw-rng              No direct <random> engine construction, <random>
                          include, std::rand/srand, or std::random_device
                          outside src/support/random.{hpp,cpp}. All draws
                          route through support::Rng / Rng::substream so
                          seeds derive deterministically.
  D2 unordered-iteration  No unordered associative containers in engine
                          code (src/{sync,async,cluster,population,sim,
                          opinion,api}): their iteration order is
                          implementation-defined and can reach results,
                          deltas, or JSON output.
  D3 raw-thread           No std::thread/std::jthread/std::async and no
                          atomic read-modify-write outside
                          support/thread_pool and the two executors
                          (sync::ShardedRoundDriver, sim::WindowedExecutor).
                          Parallelism routes through the pool; shard merges
                          are index-ordered, never completion-ordered.
  D4 wall-clock           No wall-clock / ambient-state sources in engine
                          code (everything under src/ except src/support/):
                          system_clock, high_resolution_clock, time(),
                          gettimeofday, localtime, getenv. A trajectory may
                          depend only on (seed, config).
  D5 simd-hygiene         Vector intrinsics (_mm*/__m128/__m256/__m512,
                          *intrin.h includes) only in
                          src/sync/simd_gather.cpp, which must carry
                          static_assert'ed layout checks; everything else
                          reaches SIMD through the support/cpu runtime
                          dispatch.
  D6 fault-hygiene        The fault layer stays behind its sanctioned
                          injection points: fault:: types and injector
                          draw calls appear only in src/fault/ and the
                          engine drivers that wire a FaultPlan in
                          (executors, simulation drivers, scenario/
                          registry plumbing) — never inside round/pair
                          kernels. Inside src/fault/ no stream may come
                          from the parent-advancing Rng::split(): every
                          fault stream derives through the pure
                          Rng::substream, so attaching an injector never
                          shifts an engine's random tape.

Suppressions: `// papc-lint: allow(D3): <justification>` on the violating
line, or on its own line to cover the next code line. The justification
after the colon is mandatory — an allow() without one is itself reported
(rule SUPP).

Usage:
  papc_lint.py --compdb <builddir|compile_commands.json>   lint all of src/
  papc_lint.py --files a.cpp b.cpp [--as-dir src/sync]     lint given files
  papc_lint.py --github ...                                GitHub annotations
  papc_lint.py --list-rules                                print rule table

Exits 0 when clean (or everything suppressed with justification), 1 when
violations remain, 2 on usage/IO errors.

Implementation note: the checks are lexical — a comment/string-aware
tokenizer plus per-rule token patterns — so the tool has zero dependencies
beyond CPython. When the `clang` Python bindings (libclang) are importable
the same entry points could be upgraded to AST queries; this container
ships neither libclang.so nor the bindings, so the lexical engine is the
supported path and the rules are written to be unambiguous at token level.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_MARKERS = ("CMakeLists.txt", "ROADMAP.md")

SUPPRESS_RE = re.compile(
    r"papc-lint:\s*allow\(\s*([A-Za-z0-9_,\-\s]+?)\s*\)\s*(?::\s*(\S.*))?$"
)

RULE_NAMES = {
    "D1": "raw-rng",
    "D2": "unordered-iteration",
    "D3": "raw-thread",
    "D4": "wall-clock",
    "D5": "simd-hygiene",
    "D6": "fault-hygiene",
    "SUPP": "suppression-justification",
}
NAME_TO_ID = {name: rule_id for rule_id, name in RULE_NAMES.items()}


class Violation:
    def __init__(self, path, line, col, rule_id, message):
        self.path = path          # repo-relative display path
        self.line = line          # 1-based
        self.col = col            # 1-based
        self.rule_id = rule_id
        self.message = message

    def key(self):
        return (self.path, self.line, self.col, self.rule_id)


# --------------------------------------------------------------- tokenizer

def split_code_and_comments(text):
    """Blanks comments, string and char literals out of `text`, preserving
    line structure, and collects comment text per line.

    Returns (code_lines, comments_by_line) where code_lines[i] is line i+1
    with every comment/string character replaced by a space, and
    comments_by_line maps 1-based line numbers to the concatenated comment
    text that ends on that line (suppressions live in comments).
    """
    code = []
    comments = {}
    i = 0
    n = len(text)
    line = 1
    cur = []
    cur_comment = []

    def flush_line():
        nonlocal cur
        code.append("".join(cur))
        cur = []

    def note_comment(at_line):
        nonlocal cur_comment
        if cur_comment:
            comments[at_line] = comments.get(at_line, "") + "".join(cur_comment)
            cur_comment = []

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            # Line comment: runs to end of line (ignore continuations —
            # nobody continues suppression comments across lines).
            j = text.find("\n", i)
            if j == -1:
                j = n
            cur_comment.append(text[i:j])
            note_comment(line)
            cur.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            cur_comment.append(chunk)
            for ch in chunk:
                if ch == "\n":
                    flush_line()
                    line += 1
                else:
                    cur.append(" ")
            note_comment(line)
            i = j
        elif c == '"' and text[max(0, i - 1):i + 1] != 'R"' :
            # Ordinary string literal (raw strings handled below via the
            # R" prefix check; the prefix char itself was already emitted).
            cur.append(" ")
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    cur.append("  ")
                    i += 2
                    continue
                if text[i] == "\n":
                    flush_line()
                    line += 1
                    i += 1
                    continue
                cur.append(" ")
                i += 1
            if i < n:
                cur.append(" ")
                i += 1
        elif c == '"':  # raw string: R"delim( ... )delim"
            m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
            if not m:
                cur.append(" ")
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n if j == -1 else j + len(closer)
            for ch in text[i:j]:
                if ch == "\n":
                    flush_line()
                    line += 1
                else:
                    cur.append(" ")
            i = j
        elif c == "'":
            cur.append(" ")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    cur.append("  ")
                    i += 2
                    continue
                cur.append(" ")
                i += 1
            if i < n:
                cur.append(" ")
                i += 1
        elif c == "\n":
            flush_line()
            line += 1
            i += 1
        else:
            cur.append(c)
            i += 1
    flush_line()
    return code, comments


# ------------------------------------------------------------ suppressions

class Suppressions:
    """Parsed `papc-lint: allow(...)` comments for one file.

    A suppression on a line with code covers that line; on a standalone
    comment line it covers the next line that has code. allow() without a
    `: justification` is recorded so the caller can emit a SUPP violation.
    """

    def __init__(self, code_lines, comments_by_line):
        self.covered = {}        # line -> set of rule ids
        self.unjustified = []    # (line, raw rule list)
        for cline, ctext in sorted(comments_by_line.items()):
            m = SUPPRESS_RE.search(ctext)
            if not m:
                continue
            raw, justification = m.group(1), m.group(2)
            ids = set()
            for token in re.split(r"[,\s]+", raw.strip()):
                if not token:
                    continue
                rule_id = NAME_TO_ID.get(token, token.upper())
                ids.add(rule_id)
            if not justification:
                self.unjustified.append((cline, raw.strip()))
                # Still honor the allow: one finding (SUPP), not two.
            target = cline
            if not code_lines[cline - 1].strip():
                for look in range(cline, min(cline + 3, len(code_lines))):
                    if code_lines[look].strip():
                        target = look + 1
                        break
            self.covered.setdefault(target, set()).update(ids)
            # A same-line allow also covers the comment line itself.
            self.covered.setdefault(cline, set()).update(ids)

    def allows(self, line, rule_id):
        return rule_id in self.covered.get(line, set())


# ------------------------------------------------------------------- rules

class Rule:
    """One lint rule: an applicability predicate over repo-relative paths
    plus token patterns evaluated on comment/string-blanked lines."""

    def __init__(self, rule_id, applies, patterns):
        self.rule_id = rule_id
        self.name = RULE_NAMES[rule_id]
        self.applies = applies
        self.patterns = patterns  # list of (compiled_regex, message)

    def check(self, relpath, code_lines):
        out = []
        for lineno, code in enumerate(code_lines, start=1):
            for regex, message in self.patterns:
                for m in regex.finditer(code):
                    out.append(Violation(relpath, lineno, m.start() + 1,
                                         self.rule_id, message))
        return out


def _under(relpath, *prefixes):
    return any(relpath.startswith(p) for p in prefixes)


D1_EXEMPT = ("src/support/random.hpp", "src/support/random.cpp")
D2_DIRS = tuple(f"src/{d}/" for d in
                ("sync", "async", "cluster", "population", "sim", "opinion",
                 "api"))
D3_EXEMPT = ("src/support/thread_pool.hpp", "src/support/thread_pool.cpp",
             "src/sim/windowed_executor.hpp", "src/sync/round_kernel.hpp")
D5_ALLOWED = "src/sync/simd_gather.cpp"

# The sanctioned fault-injection surface: the layer itself plus every
# engine driver that wires a FaultPlan in. Kernels, queues, census and
# support code must stay fault-free — faults interpose at delivery /
# round / pair boundaries, never inside the hot loops.
D6_SANCTIONED = (
    "src/fault/",
    "src/sim/windowed_executor.hpp",
    "src/async/config.hpp",
    "src/async/simulation.hpp", "src/async/simulation.cpp",
    "src/async/sequential_simulation.hpp",
    "src/async/sequential_simulation.cpp",
    "src/async/validated_simulation.hpp",
    "src/async/validated_simulation.cpp",
    "src/cluster/config.hpp",
    "src/cluster/simulation.hpp", "src/cluster/simulation.cpp",
    "src/sync/engine.hpp",
    "src/sync/baselines.hpp", "src/sync/baselines.cpp",
    "src/sync/algorithm1.hpp", "src/sync/algorithm1.cpp",
    "src/population/scheduler.hpp", "src/population/scheduler.cpp",
    "src/api/scenario.hpp", "src/api/scenario.cpp",
    "src/api/registry.cpp",
)

RULES = [
    Rule(
        "D1",
        lambda p: _under(p, "src/") and p not in D1_EXEMPT,
        [
            (re.compile(r"\b(?:mt19937(?:_64)?|minstd_rand0?"
                        r"|default_random_engine|knuth_b"
                        r"|ranlux(?:24|48)(?:_base)?|random_device)\b"),
             "direct <random> engine/device; route draws through "
             "support::Rng / Rng::substream"),
            (re.compile(r"\bsrand\s*\(|\bstd\s*::\s*rand\b"
                        r"|(?<![\w:])rand\s*\(\s*\)"),
             "C rand()/srand(); route draws through support::Rng"),
            (re.compile(r"#\s*include\s*<random>"),
             "<random> include outside support/random; use support::Rng"),
        ],
    ),
    Rule(
        "D2",
        lambda p: _under(p, *D2_DIRS),
        [
            (re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
             "unordered container in engine code: iteration order is "
             "implementation-defined and can reach results/deltas/JSON; "
             "use std::map, a sorted vector, or index-keyed storage"),
        ],
    ),
    Rule(
        "D3",
        lambda p: _under(p, "src/") and p not in D3_EXEMPT,
        [
            (re.compile(r"\bstd\s*::\s*(?:jthread|thread)\b"
                        r"(?!\s*::\s*hardware_concurrency)"),
             "raw std::thread; route parallelism through "
             "support::ThreadPool (index-ordered merges)"),
            (re.compile(r"\bstd\s*::\s*async\b"),
             "std::async; route parallelism through support::ThreadPool"),
            (re.compile(r"\.\s*fetch_(?:add|sub|and|or|xor)\s*\("
                        r"|\.\s*compare_exchange_(?:weak|strong)\s*\("),
             "atomic read-modify-write outside the pool/executors: "
             "completion-order accumulation breaks bit-identical merges; "
             "merge per-shard results in index order"),
        ],
    ),
    Rule(
        "D4",
        lambda p: _under(p, "src/") and not _under(p, "src/support/"),
        [
            (re.compile(r"\bsystem_clock\b|\bhigh_resolution_clock\b"),
             "wall-clock source in engine code; trajectories may depend "
             "only on (seed, config)"),
            (re.compile(r"\bstd\s*::\s*time\b|(?<!\w)::time\s*\("
                        r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
             "time-of-day source in engine code"),
            (re.compile(r"\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b"
                        r"|\bgmtime\b|(?<![\w:])clock\s*\(\s*\)"),
             "time-of-day source in engine code"),
            (re.compile(r"\bgetenv\b"),
             "environment-derived state in engine code; thread config "
             "through Scenario/Config instead"),
        ],
    ),
    Rule(
        "D5",
        lambda p: _under(p, "src/") and p != D5_ALLOWED,
        [
            (re.compile(r"\b_mm\d*_\w+|\b__m(?:64|128|256|512)[a-z]?\b"),
             "vector intrinsics outside sync/simd_gather.cpp; add kernels "
             "there behind the support/cpu dispatch"),
            (re.compile(r"#\s*include\s*<\w*intrin\.h>"),
             "intrinsics header outside sync/simd_gather.cpp"),
        ],
    ),
    Rule(
        "D6",
        lambda p: _under(p, "src/") and not _under(p, *D6_SANCTIONED),
        [
            (re.compile(r"\bfault\s*::\s*\w+|#\s*include\s*\"fault/"),
             "fault-layer reference outside the sanctioned injection "
             "points; faults interpose at the engine drivers and "
             "executors, never inside kernels or support code"),
            (re.compile(r"\bdraw_fate\s*\(|\bbyzantine_round_stream\s*\("),
             "injector draw call outside the sanctioned injection points"),
        ],
    ),
    Rule(
        "D6",
        lambda p: _under(p, "src/fault/"),
        [
            (re.compile(r"\.\s*split\s*\(\s*\)"),
             "parent-advancing Rng::split() in the fault layer; derive "
             "every fault stream via the pure Rng::substream so attaching "
             "an injector never shifts an engine's random tape"),
        ],
    ),
]

# simd_gather.cpp itself must pin its layout assumptions: the AVX2 paths
# hard-code 8-byte gather strides and 4-byte Opinion stores.
D5_REQUIRED_TOKEN = re.compile(r"\bstatic_assert\s*\(")


def lint_file(path, relpath):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"papc_lint: cannot read {path}: {err}", file=sys.stderr)
        return None
    code_lines, comments = split_code_and_comments(text)
    supp = Suppressions(code_lines, comments)

    raw = []
    for rule in RULES:
        if rule.applies(relpath):
            raw.extend(rule.check(relpath, code_lines))

    if relpath == D5_ALLOWED and not any(
            D5_REQUIRED_TOKEN.search(line) for line in code_lines):
        raw.append(Violation(
            relpath, 1, 1, "D5",
            "simd_gather.cpp carries intrinsics but no static_assert'ed "
            "layout checks; pin the lane/stride assumptions"))

    violations = []
    suppressed = 0
    for v in raw:
        if supp.allows(v.line, v.rule_id):
            suppressed += 1
        else:
            violations.append(v)
    for line, rules in supp.unjustified:
        violations.append(Violation(
            relpath, line, 1, "SUPP",
            f"papc-lint: allow({rules}) has no justification; write "
            f"`papc-lint: allow({rules}): <why this is safe>`"))
    return violations, suppressed


# -------------------------------------------------------------- file lists

def find_repo_root(start):
    p = start.resolve()
    for candidate in [p, *p.parents]:
        if all((candidate / m).exists() for m in REPO_MARKERS):
            return candidate
    return start.resolve()


def files_from_compdb(compdb_arg, root):
    compdb_path = Path(compdb_arg)
    if compdb_path.is_dir():
        compdb_path = compdb_path / "compile_commands.json"
    if not compdb_path.is_file():
        print(f"papc_lint: no compile database at {compdb_path} "
              f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return None
    try:
        entries = json.loads(compdb_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"papc_lint: cannot parse {compdb_path}: {err}",
              file=sys.stderr)
        return None

    src_root = (root / "src").resolve()
    files = set()
    for entry in entries:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            f = f.resolve()
        except OSError:
            continue
        if f.is_file() and str(f).startswith(str(src_root) + "/"):
            files.add(f)
    # The compile database lists translation units only; headers carry the
    # same contracts (round_kernel.hpp IS the sharded driver), so sweep
    # them in directly.
    for header in src_root.rglob("*.hpp"):
        files.add(header.resolve())
    return sorted(files)


# -------------------------------------------------------------------- main

def main(argv):
    parser = argparse.ArgumentParser(
        prog="papc_lint",
        description="determinism lint for papc (rules D1-D6; see --list-rules)")
    parser.add_argument("--compdb", metavar="BUILDDIR",
                        help="build dir (or compile_commands.json) to lint "
                             "all of src/ from")
    parser.add_argument("--files", nargs="+", metavar="FILE",
                        help="explicit files to lint (fixture/test mode)")
    parser.add_argument("--as-dir", metavar="RELDIR",
                        help="with --files: pretend each file lives in this "
                             "repo-relative directory (rule scoping)")
    parser.add_argument("--root", metavar="DIR",
                        help="repo root (default: auto-detected)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions annotations")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name in RULE_NAMES.items():
            print(f"{rule_id:5} {name}")
        return 0

    root = Path(args.root).resolve() if args.root else find_repo_root(
        Path(args.compdb or args.files and args.files[0] or "."))

    if args.compdb:
        files = files_from_compdb(args.compdb, root)
        if files is None:
            return 2
        targets = []
        for f in files:
            targets.append((f, f.relative_to(root).as_posix()))
    elif args.files:
        targets = []
        for name in args.files:
            f = Path(name).resolve()
            if args.as_dir:
                rel = f"{args.as_dir.rstrip('/')}/{f.name}"
            else:
                try:
                    rel = f.relative_to(root).as_posix()
                except ValueError:
                    rel = f.name
            targets.append((f, rel))
    else:
        parser.error("one of --compdb or --files is required")
        return 2

    all_violations = []
    total_suppressed = 0
    for path, relpath in targets:
        result = lint_file(path, relpath)
        if result is None:
            return 2
        violations, suppressed = result
        all_violations.extend(violations)
        total_suppressed += suppressed

    all_violations.sort(key=Violation.key)
    for v in all_violations:
        name = RULE_NAMES.get(v.rule_id, v.rule_id)
        if args.github:
            print(f"::error file={v.path},line={v.line},col={v.col},"
                  f"title=papc_lint {v.rule_id} ({name})::{v.message}")
        else:
            print(f"{v.path}:{v.line}:{v.col}: [{v.rule_id} {name}] "
                  f"{v.message}")

    print(f"papc_lint: {len(targets)} files, {len(all_violations)} "
          f"violation(s), {total_suppressed} suppressed",
          file=sys.stderr)
    return 1 if all_violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
