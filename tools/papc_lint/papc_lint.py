#!/usr/bin/env python3
"""papc_lint — repo-specific determinism + architecture lint for papc.

Every engine in this repo promises fixed-seed, bit-identical trajectories
across thread counts, queue kinds, and scalar/SIMD kernels. Those contracts
are pinned by runtime equivalence tests, but nothing in the compiler stops
new code from quietly breaking them: iterating an unordered_map into a
result, constructing a private std::mt19937, merging shard state in
pool-completion order — or, since v2, failure modes no single translation
unit can exhibit: an include cycle, an engine reaching "up" through the
layer graph, or two call sites deriving colliding Rng substreams. The tool
runs two kinds of passes:

Per-file rules (token patterns on comment/string-blanked lines):

  D1 raw-rng              No direct <random> engine construction, <random>
                          include, std::rand/srand, or std::random_device
                          outside src/support/random.{hpp,cpp}. All draws
                          route through support::Rng / Rng::substream so
                          seeds derive deterministically.
  D2 unordered-iteration  No unordered associative containers in engine
                          code (src/{sync,async,cluster,population,sim,
                          opinion,api}): their iteration order is
                          implementation-defined and can reach results,
                          deltas, or JSON output.
  D3 raw-thread           No std::thread/std::jthread/std::async and no
                          atomic read-modify-write outside
                          support/thread_pool and the two executors
                          (sync::ShardedRoundDriver, sim::WindowedExecutor).
                          Parallelism routes through the pool; shard merges
                          are index-ordered, never completion-ordered.
  D4 wall-clock           No wall-clock / ambient-state sources in engine
                          code (everything under src/ except src/support/):
                          system_clock, high_resolution_clock, time(),
                          gettimeofday, localtime, getenv. A trajectory may
                          depend only on (seed, config).
  D5 simd-hygiene         Vector intrinsics (_mm*/__m128/__m256/__m512,
                          *intrin.h includes) only in
                          src/sync/simd_gather.cpp, which must carry
                          static_assert'ed layout checks; everything else
                          reaches SIMD through the support/cpu runtime
                          dispatch.
  D6 fault-hygiene        The fault layer stays behind its sanctioned
                          injection points: fault:: types and injector
                          draw calls appear only in src/fault/ and the
                          engine drivers that wire a FaultPlan in
                          (executors, simulation drivers, scenario/
                          registry plumbing) — never inside round/pair
                          kernels. Inside src/fault/ no stream may come
                          from the parent-advancing Rng::split(): every
                          fault stream derives through the pure
                          Rng::substream, so attaching an injector never
                          shifts an engine's random tape.
  D8 shard-capture        A lambda handed to support::ThreadPool::
                          parallel_for (or the sharded-driver entry points
                          for_each_shard / run_batched / run_shards*) that
                          captures by reference must not WRITE captured
                          state from inside the job body unless the write
                          lands in a slot indexed by a lambda parameter
                          (per_trial[r] = ...). Anything else is a
                          completion-order race on the deterministic merge
                          contract. Approximate by design: writes through
                          locally-bound references or member calls are
                          invisible at token level; known-safe folds carry
                          a justified suppression.

Whole-program passes (need the full target set, not one file):

  L1 include-cycle        The repo include graph (headers resolved per-TU
                          from the compile database's -I flags) must be a
                          DAG. Any cycle is reported once with its path.
  L2 layer-violation      Every include edge must stay within its layer or
                          point strictly DOWN the committed layer manifest
                          (tools/papc_lint/layers.toml: support -> opinion
                          -> core -> fault -> sim -> analysis -> engines ->
                          graph -> runner -> api -> tests/bench/examples/
                          tools). Same-rank layers (the four engine
                          families) may not include each other. A file not
                          covered by the manifest is itself an L2 finding,
                          so new directories cannot bypass the map. The
                          manifest's [[allow]] entries whitelist individual
                          layer edges with a mandatory reason.
  D7 substream-collision  Every Rng::substream(a, b) call site is
                          extracted across all TUs, constant labels are
                          resolved (including constexpr channel tags like
                          the fault layer's), and two distinct sites whose
                          label tuples can collide under the same parent
                          generator are reported — the correlated-stream
                          hazard that silently biases every consensus
                          statistic and that no per-file rule can see.
                          Sites are grouped by the textual parent
                          expression (msg_base_, base_rng, ...); a pair is
                          cleared when any label position is provably
                          different constants on both sides.

Coverage: the whole-program run lints src/, tests/, bench/ and examples/
(tests/tools/fixtures/ excluded — those files violate on purpose). Rules
are gated by a per-directory profile: engine-only rules (D2, D3, D6, D7,
D8) are relaxed for tests/, which deliberately exercise pools, atomics,
fault plans, and colliding substreams.

Suppressions: `// papc-lint: allow(D3): <justification>` on the violating
line, or on its own line to cover the next code line. The justification
after the colon is mandatory — an allow() without one is itself reported
(rule SUPP). For D7 the pair is cleared when either colliding site is
suppressed; for L1/L2 the anchor is the offending #include line.

Usage:
  papc_lint.py --compdb <builddir|compile_commands.json>   whole-program
  papc_lint.py --files a.cpp b.cpp [--as-dir src/sync]     per-file rules
  papc_lint.py --tree DIR                                  lint DIR as a
                                                           mini-repo (all
                                                           passes; fixture
                                                           trees)
  papc_lint.py --layers FILE       alternative layer manifest
  papc_lint.py --graph out.dot     file-level include graph (Graphviz)
  papc_lint.py --layer-graph out.dot  condensed layer DAG (Graphviz)
  papc_lint.py --json report.json  structured findings for tooling
  papc_lint.py --github ...        GitHub annotations
  papc_lint.py --list-rules        print rule table

Exits 0 when clean (or everything suppressed with justification), 1 when
violations remain, 2 on usage/IO/manifest errors.

Implementation note: the checks are lexical — a comment/string-aware
tokenizer plus per-rule token patterns and a paren-matching call-site
extractor — so the tool has zero dependencies beyond CPython (the layer
manifest parses through tomllib when available, with a built-in fallback
for the restricted schema). When the `clang` Python bindings (libclang)
are importable the same entry points could be upgraded to AST queries;
this container ships neither libclang.so nor the bindings, so the lexical
engine is the supported path and the rules are written to be unambiguous
at token level.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_MARKERS = ("CMakeLists.txt", "ROADMAP.md")

SUPPRESS_RE = re.compile(
    r"papc-lint:\s*allow\(\s*([A-Za-z0-9_,\-\s]+?)\s*\)\s*(?::\s*(\S.*))?$"
)

RULE_NAMES = {
    "D1": "raw-rng",
    "D2": "unordered-iteration",
    "D3": "raw-thread",
    "D4": "wall-clock",
    "D5": "simd-hygiene",
    "D6": "fault-hygiene",
    "D7": "substream-collision",
    "D8": "shard-capture",
    "L1": "include-cycle",
    "L2": "layer-violation",
    "SUPP": "suppression-justification",
}
NAME_TO_ID = {name: rule_id for rule_id, name in RULE_NAMES.items()}

# Which rules run where, by top-level directory. Engine-only rules (D2,
# D3, D6, D7, D8) are relaxed for tests/: the pool, atomics, fault plans
# and substream collisions are exactly what the test suites exercise on
# purpose. bench/ and examples/ are user-facing consumer code: they keep
# the container/SIMD/clock hygiene rules and the shard-capture rule (a
# racy example teaches the race), but not the engine-internal fault/
# substream layering rules. The whole-program layer pass (L1/L2) is not
# listed here — it runs on the full include graph regardless.
PROFILES = {
    "src": {"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "SUPP"},
    "tests": {"D1", "D4", "D5", "SUPP"},
    "bench": {"D1", "D2", "D4", "D5", "D8", "SUPP"},
    "examples": {"D1", "D2", "D4", "D5", "D8", "SUPP"},
    "tools": {"SUPP"},
}
DEFAULT_PROFILE = {"SUPP"}

# Deliberately-violating lint fixtures — never lint as part of the tree.
EXCLUDED_PREFIXES = ("tests/tools/fixtures/",)


def profile_for(relpath):
    top = relpath.split("/", 1)[0]
    return PROFILES.get(top, DEFAULT_PROFILE)


class Violation:
    def __init__(self, path, line, col, rule_id, message):
        self.path = path          # repo-relative display path
        self.line = line          # 1-based
        self.col = col            # 1-based
        self.rule_id = rule_id
        self.message = message

    def key(self):
        return (self.path, self.line, self.col, self.rule_id)


# --------------------------------------------------------------- tokenizer

def split_code_and_comments(text):
    """Blanks comments, string and char literals out of `text`, preserving
    line structure, and collects comment text per line.

    Returns (code_lines, comments_by_line) where code_lines[i] is line i+1
    with every comment/string character replaced by a space, and
    comments_by_line maps 1-based line numbers to the concatenated comment
    text that ends on that line (suppressions live in comments).
    """
    code = []
    comments = {}
    i = 0
    n = len(text)
    line = 1
    cur = []
    cur_comment = []

    def flush_line():
        nonlocal cur
        code.append("".join(cur))
        cur = []

    def note_comment(at_line):
        nonlocal cur_comment
        if cur_comment:
            comments[at_line] = comments.get(at_line, "") + "".join(cur_comment)
            cur_comment = []

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            # Line comment: runs to end of line (ignore continuations —
            # nobody continues suppression comments across lines).
            j = text.find("\n", i)
            if j == -1:
                j = n
            cur_comment.append(text[i:j])
            note_comment(line)
            cur.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            cur_comment.append(chunk)
            for ch in chunk:
                if ch == "\n":
                    flush_line()
                    line += 1
                else:
                    cur.append(" ")
            note_comment(line)
            i = j
        elif c == '"' and text[max(0, i - 1):i + 1] != 'R"' :
            # Ordinary string literal (raw strings handled below via the
            # R" prefix check; the prefix char itself was already emitted).
            cur.append(" ")
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    cur.append("  ")
                    i += 2
                    continue
                if text[i] == "\n":
                    flush_line()
                    line += 1
                    i += 1
                    continue
                cur.append(" ")
                i += 1
            if i < n:
                cur.append(" ")
                i += 1
        elif c == '"':  # raw string: R"delim( ... )delim"
            m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
            if not m:
                cur.append(" ")
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n if j == -1 else j + len(closer)
            for ch in text[i:j]:
                if ch == "\n":
                    flush_line()
                    line += 1
                else:
                    cur.append(" ")
            i = j
        elif c == "'":
            cur.append(" ")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    cur.append("  ")
                    i += 2
                    continue
                cur.append(" ")
                i += 1
            if i < n:
                cur.append(" ")
                i += 1
        elif c == "\n":
            flush_line()
            line += 1
            i += 1
        else:
            cur.append(c)
            i += 1
    flush_line()
    return code, comments


# ------------------------------------------------------------ suppressions

class Suppressions:
    """Parsed `papc-lint: allow(...)` comments for one file.

    A suppression on a line with code covers that line; on a standalone
    comment line it covers the next line that has code. allow() without a
    `: justification` is recorded so the caller can emit a SUPP violation.
    """

    def __init__(self, code_lines, comments_by_line):
        self.covered = {}        # line -> set of rule ids
        self.unjustified = []    # (line, raw rule list)
        for cline, ctext in sorted(comments_by_line.items()):
            m = SUPPRESS_RE.search(ctext)
            if not m:
                continue
            raw, justification = m.group(1), m.group(2)
            ids = set()
            for token in re.split(r"[,\s]+", raw.strip()):
                if not token:
                    continue
                rule_id = NAME_TO_ID.get(token, token.upper())
                ids.add(rule_id)
            if not justification:
                self.unjustified.append((cline, raw.strip()))
                # Still honor the allow: one finding (SUPP), not two.
            # A standalone comment (possibly a multi-line block) covers the
            # next line that carries code.
            target = cline
            if not code_lines[cline - 1].strip():
                for look in range(cline, len(code_lines)):
                    if code_lines[look].strip():
                        target = look + 1
                        break
            self.covered.setdefault(target, set()).update(ids)
            # A same-line allow also covers the comment line itself.
            self.covered.setdefault(cline, set()).update(ids)

    def allows(self, line, rule_id):
        return rule_id in self.covered.get(line, set())


# ------------------------------------------------------------------- rules

class Rule:
    """One lint rule: an applicability predicate over repo-relative paths
    plus token patterns evaluated on comment/string-blanked lines. The
    per-directory PROFILES gate is applied on top by the driver."""

    def __init__(self, rule_id, applies, patterns):
        self.rule_id = rule_id
        self.name = RULE_NAMES[rule_id]
        self.applies = applies
        self.patterns = patterns  # list of (compiled_regex, message)

    def check(self, relpath, code_lines):
        out = []
        for lineno, code in enumerate(code_lines, start=1):
            for regex, message in self.patterns:
                for m in regex.finditer(code):
                    out.append(Violation(relpath, lineno, m.start() + 1,
                                         self.rule_id, message))
        return out


def _under(relpath, *prefixes):
    return any(relpath.startswith(p) for p in prefixes)


D1_EXEMPT = ("src/support/random.hpp", "src/support/random.cpp")
D2_DIRS = tuple(f"src/{d}/" for d in
                ("sync", "async", "cluster", "population", "sim", "opinion",
                 "api"))
D3_EXEMPT = ("src/support/thread_pool.hpp", "src/support/thread_pool.cpp",
             "src/sim/windowed_executor.hpp", "src/sync/round_kernel.hpp")
D5_ALLOWED = "src/sync/simd_gather.cpp"

# The sanctioned fault-injection surface: the layer itself plus every
# engine driver that wires a FaultPlan in. Kernels, queues, census and
# support code must stay fault-free — faults interpose at delivery /
# round / pair boundaries, never inside the hot loops.
D6_SANCTIONED = (
    "src/fault/",
    "src/sim/windowed_executor.hpp",
    "src/async/config.hpp",
    "src/async/simulation.hpp", "src/async/simulation.cpp",
    "src/async/sequential_simulation.hpp",
    "src/async/sequential_simulation.cpp",
    "src/async/validated_simulation.hpp",
    "src/async/validated_simulation.cpp",
    "src/cluster/config.hpp",
    "src/cluster/simulation.hpp", "src/cluster/simulation.cpp",
    "src/sync/engine.hpp",
    "src/sync/baselines.hpp", "src/sync/baselines.cpp",
    "src/sync/algorithm1.hpp", "src/sync/algorithm1.cpp",
    "src/population/scheduler.hpp", "src/population/scheduler.cpp",
    "src/api/scenario.hpp", "src/api/scenario.cpp",
    "src/api/registry.cpp",
)

RULES = [
    Rule(
        "D1",
        lambda p: p not in D1_EXEMPT,
        [
            (re.compile(r"\b(?:mt19937(?:_64)?|minstd_rand0?"
                        r"|default_random_engine|knuth_b"
                        r"|ranlux(?:24|48)(?:_base)?|random_device)\b"),
             "direct <random> engine/device; route draws through "
             "support::Rng / Rng::substream"),
            (re.compile(r"\bsrand\s*\(|\bstd\s*::\s*rand\b"
                        r"|(?<![\w:])rand\s*\(\s*\)"),
             "C rand()/srand(); route draws through support::Rng"),
            (re.compile(r"#\s*include\s*<random>"),
             "<random> include outside support/random; use support::Rng"),
        ],
    ),
    Rule(
        "D2",
        lambda p: not _under(p, "src/") or _under(p, *D2_DIRS),
        [
            (re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
             "unordered container in engine code: iteration order is "
             "implementation-defined and can reach results/deltas/JSON; "
             "use std::map, a sorted vector, or index-keyed storage"),
        ],
    ),
    Rule(
        "D3",
        lambda p: p not in D3_EXEMPT,
        [
            (re.compile(r"\bstd\s*::\s*(?:jthread|thread)\b"
                        r"(?!\s*::\s*hardware_concurrency)"),
             "raw std::thread; route parallelism through "
             "support::ThreadPool (index-ordered merges)"),
            (re.compile(r"\bstd\s*::\s*async\b"),
             "std::async; route parallelism through support::ThreadPool"),
            (re.compile(r"\.\s*fetch_(?:add|sub|and|or|xor)\s*\("
                        r"|\.\s*compare_exchange_(?:weak|strong)\s*\("),
             "atomic read-modify-write outside the pool/executors: "
             "completion-order accumulation breaks bit-identical merges; "
             "merge per-shard results in index order"),
        ],
    ),
    Rule(
        "D4",
        lambda p: not _under(p, "src/support/"),
        [
            (re.compile(r"\bsystem_clock\b|\bhigh_resolution_clock\b"),
             "wall-clock source in engine code; trajectories may depend "
             "only on (seed, config)"),
            (re.compile(r"\bstd\s*::\s*time\b|(?<!\w)::time\s*\("
                        r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
             "time-of-day source in engine code"),
            (re.compile(r"\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b"
                        r"|\bgmtime\b|(?<![\w:])clock\s*\(\s*\)"),
             "time-of-day source in engine code"),
            (re.compile(r"\bgetenv\b"),
             "environment-derived state in engine code; thread config "
             "through Scenario/Config instead"),
        ],
    ),
    Rule(
        "D5",
        lambda p: p != D5_ALLOWED,
        [
            (re.compile(r"\b_mm\d*_\w+|\b__m(?:64|128|256|512)[a-z]?\b"),
             "vector intrinsics outside sync/simd_gather.cpp; add kernels "
             "there behind the support/cpu dispatch"),
            (re.compile(r"#\s*include\s*<\w*intrin\.h>"),
             "intrinsics header outside sync/simd_gather.cpp"),
        ],
    ),
    Rule(
        "D6",
        lambda p: _under(p, "src/") and not _under(p, *D6_SANCTIONED),
        [
            (re.compile(r"\bfault\s*::\s*\w+|#\s*include\s*\"fault/"),
             "fault-layer reference outside the sanctioned injection "
             "points; faults interpose at the engine drivers and "
             "executors, never inside kernels or support code"),
            (re.compile(r"\bdraw_fate\s*\(|\bbyzantine_round_stream\s*\("),
             "injector draw call outside the sanctioned injection points"),
        ],
    ),
    Rule(
        "D6",
        lambda p: _under(p, "src/fault/"),
        [
            (re.compile(r"\.\s*split\s*\(\s*\)"),
             "parent-advancing Rng::split() in the fault layer; derive "
             "every fault stream via the pure Rng::substream so attaching "
             "an injector never shifts an engine's random tape"),
        ],
    ),
]

# simd_gather.cpp itself must pin its layout assumptions: the AVX2 paths
# hard-code 8-byte gather strides and 4-byte Opinion stores.
D5_REQUIRED_TOKEN = re.compile(r"\bstatic_assert\s*\(")


# ----------------------------------------------------- call-site extraction

def match_paren(text, open_idx, open_ch="(", close_ch=")"):
    """Index one past the matching close for text[open_idx] == open_ch, or
    -1 when unbalanced. text must be comment/string-blanked."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_commas(text):
    """Splits an argument blob on commas at bracket depth zero."""
    parts = []
    depth = 0
    cur = []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


class LineIndex:
    """Maps an offset in '\n'.join(code_lines) back to a 1-based line."""

    def __init__(self, code_lines):
        self.starts = []
        pos = 0
        for line in code_lines:
            self.starts.append(pos)
            pos += len(line) + 1
        self.text = "\n".join(code_lines)

    def line_of(self, offset):
        lo, hi = 0, len(self.starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def col_of(self, offset):
        return offset - self.starts[self.line_of(offset) - 1] + 1


# ------------------------------------------------- D7: substream collisions

SUBSTREAM_CALL_RE = re.compile(r"(?<!:)\.\s*substream\s*\(")
CONSTEXPR_RE = re.compile(
    r"\bconstexpr\b[^=;(){}]*?\b([A-Za-z_]\w*)\s*=\s*([^;,{}]+);")
INT_LITERAL_RE = re.compile(r"^(0[xX][0-9a-fA-F]+|\d+)(?:[uUlL]{0,3})$")
CAST_RE = re.compile(r"^(?:static_cast|std\s*::\s*uint64_t|std\s*::\s*"
                     r"size_t)\s*(?:<[^<>]*>)?\s*\((.*)\)$")


class SubstreamSite:
    """One textual Rng::substream(a, b) call site."""

    def __init__(self, relpath, line, col, parent, labels, snippet):
        self.relpath = relpath
        self.line = line
        self.col = col
        self.parent = parent      # normalized parent expression text
        self.labels = labels      # [(kind, value)] kind in {const, var}
        self.snippet = snippet

    def describe_labels(self):
        out = []
        for kind, value in self.labels:
            out.append(str(value) if kind == "const" else f"<{value}>")
        return "(" + ", ".join(out) + ")"


def parse_constants(code_lines, table):
    """Collects single-line `constexpr ... name = <int literal>;` constants
    into `table` (name -> int, or None when ambiguously redefined)."""
    for code in code_lines:
        for m in CONSTEXPR_RE.finditer(code):
            name, value_text = m.group(1), m.group(2).strip()
            lit = INT_LITERAL_RE.match(value_text)
            if not lit:
                continue
            value = int(lit.group(1), 0)
            if name in table and table[name] != value:
                table[name] = None  # conflicting definitions: unusable
            elif name not in table:
                table[name] = value


def normalize_label(text, constants):
    """Classifies one substream label argument as a resolved constant or a
    variable shape. Casts are stripped; constexpr names resolve through
    `constants`."""
    text = text.strip()
    while True:
        m = CAST_RE.match(text)
        if not m:
            break
        text = m.group(1).strip()
    lit = INT_LITERAL_RE.match(text)
    if lit:
        return ("const", int(lit.group(1), 0))
    if re.fullmatch(r"[A-Za-z_]\w*", text):
        value = constants.get(text)
        if value is not None:
            return ("const", value)
    return ("var", re.sub(r"\s+", "", text) or "?")


def extract_substream_sites(relpath, index, constants):
    """All substream call sites in one file, with parent expressions and
    normalized labels."""
    sites = []
    text = index.text
    for m in SUBSTREAM_CALL_RE.finditer(text):
        # Walk left over the parent expression: identifiers chained with
        # '.', '->' or '::' (e.g. msg_base_, lanes_[s]->rng, fault::tag).
        j = m.start()
        k = j
        while k > 0 and (text[k - 1].isalnum() or text[k - 1] in "_.:>]-"):
            k -= 1
        parent = re.sub(r"\s+", "", text[k:j])
        if not parent:
            continue
        open_idx = text.index("(", m.start())
        close = match_paren(text, open_idx)
        if close == -1:
            continue
        args = split_top_commas(text[open_idx + 1:close - 1])
        if len(args) != 2:
            continue
        labels = [normalize_label(a, constants) for a in args]
        line = index.line_of(m.start())
        col = index.col_of(m.start())
        sites.append(SubstreamSite(relpath, line, col, parent, labels,
                                   text[k:close].strip()))
    return sites


def labels_may_collide(a, b):
    """True unless some label position is provably different constants."""
    for (ka, va), (kb, vb) in zip(a, b):
        if ka == "const" and kb == "const" and va != vb:
            return False
    return True


def audit_substreams(sites):
    """Pairs of distinct call sites whose label tuples can collide under
    the same (textual) parent generator. Returns [(site_a, site_b)]."""
    by_parent = {}
    for site in sites:
        by_parent.setdefault(site.parent, []).append(site)
    collisions = []
    for parent in sorted(by_parent):
        group = sorted(by_parent[parent],
                       key=lambda s: (s.relpath, s.line, s.col))
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = group[i], group[j]
                if labels_may_collide(a.labels, b.labels):
                    collisions.append((a, b))
    return collisions


# ---------------------------------------------------- D8: shard captures

POOL_ENTRY_RE = re.compile(
    r"\b(?:parallel_for|for_each_shard|run_batched|run_shards_inline"
    r"|run_shards)\b\s*(?:<[^;<>]*>\s*)?\(")
PARAM_NAME_RE = re.compile(r"(?<!:)\b([A-Za-z_]\w*)\s*$")
LOCAL_DECL_RE = re.compile(
    r"\b(?:const\s+|constexpr\s+)?(?:auto|[A-Za-z_][\w:]*"
    r"(?:\s*<[^;{}()=]*>)?)\s*[&*]{0,2}\s+([A-Za-z_]\w*)\s*[=;({]")
WRITE_RES = [
    re.compile(r"^\s*(?:\+\+|--)\s*([A-Za-z_]\w*)"),
    re.compile(r"^\s*([A-Za-z_]\w*)\s*(?:\+\+|--)"),
    re.compile(r"^\s*([A-Za-z_]\w*)"
               r"((?:\s*(?:\.|->)\s*\w+|\s*\[[^\]]*\])*)"
               r"\s*(?:[-+*/%&|^]|<<|>>)?=(?!=)"),
]


def param_names(param_text):
    """Trailing identifier of each top-level comma-separated parameter —
    blanked /*name*/ comments simply yield no name."""
    names = set()
    for part in split_top_commas(param_text):
        m = PARAM_NAME_RE.search(part.rstrip())
        if m and m.group(1) not in ("const", "auto"):
            names.add(m.group(1))
    return names


def find_lambda(text, start, end):
    """First lambda literal inside text[start:end): returns (capture_start,
    body_start, body_end) or None. A '[' introduces a lambda when the
    previous non-space char opens an argument position."""
    i = start
    while i < end:
        c = text[i]
        if c == "[":
            k = i - 1
            while k >= start and text[k].isspace():
                k -= 1
            if k < start or text[k] in "(,":
                cap_end = match_paren(text, i, "[", "]")
                if cap_end == -1:
                    return None
                j = cap_end
                while j < end and text[j].isspace():
                    j += 1
                if j < end and text[j] == "(":
                    j = match_paren(text, j)
                    if j == -1:
                        return None
                while j < end and text[j] != "{":
                    if text[j] == ";":
                        return None
                    j += 1
                if j >= end:
                    return None
                body_end = match_paren(text, j, "{", "}")
                if body_end == -1:
                    return None
                return (i, j, body_end)
        i += 1
    return None


def analyze_pool_lambda(relpath, index, cap_start, body_start, body_end):
    """D8 write analysis of one pool-job lambda. Returns violations."""
    text = index.text
    cap_end = match_paren(text, cap_start, "[", "]")
    captures = text[cap_start + 1:cap_end - 1]
    if "&" not in captures and "this" not in captures:
        return []  # by-value captures cannot race the merge contract

    params = set()
    j = cap_end
    while j < body_start and text[j].isspace():
        j += 1
    if j < body_start and text[j] == "(":
        pclose = match_paren(text, j)
        params = param_names(text[j + 1:pclose - 1])

    body = text[body_start + 1:body_end - 1]
    locals_ = set(LOCAL_DECL_RE.findall(body))
    # Nested lambda parameters are locals of the enclosing job body too.
    for m in re.finditer(r"\]\s*\(", body):
        pclose = match_paren(body, m.end() - 1)
        if pclose != -1:
            locals_ |= param_names(body[m.end():pclose - 1])

    out = []
    # Statement-leading positions: after ';', '{' or '}'.
    for stmt in re.finditer(r"[;{}]", body):
        seg_start = stmt.end()
        seg_end = len(body)
        nxt = re.search(r"[;{}]", body[seg_start:])
        if nxt:
            seg_end = seg_start + nxt.start()
        _check_write_segment(body, seg_start, seg_end, params, locals_,
                             relpath, index, body_start + 1, out)
    # The first statement of the body has no preceding ';'/'{' inside body.
    first_end = len(body)
    nxt = re.search(r"[;{}]", body)
    if nxt:
        first_end = nxt.start()
    _check_write_segment(body, 0, first_end, params, locals_,
                         relpath, index, body_start + 1, out)
    return out


def _check_write_segment(body, seg_start, seg_end, params, locals_,
                         relpath, index, body_offset, out):
    segment = body[seg_start:seg_end]
    for regex in WRITE_RES:
        m = regex.match(segment)
        if not m:
            continue
        target = m.group(1)
        chain = m.group(2) if m.lastindex and m.lastindex >= 2 else ""
        if target in params or target in locals_:
            return
        if target in ("if", "while", "for", "return", "case", "else",
                      "switch", "do", "break", "continue", "goto"):
            return
        # A write into a slot indexed by a job parameter is the sanctioned
        # per-task result pattern (per_trial[r] = ...).
        for sub in re.finditer(r"\[([^\]]*)\]", chain):
            tokens = set(re.findall(r"[A-Za-z_]\w*", sub.group(1)))
            if tokens & params:
                return
        offset = body_offset + seg_start + m.start(1)
        out.append(Violation(
            relpath, index.line_of(offset), index.col_of(offset), "D8",
            f"pool-job lambda writes captured '{target}' outside a "
            f"parameter-indexed slot: completion-order writes break the "
            f"bit-identical merge contract; accumulate per-shard and fold "
            f"in index order at the barrier (or suppress with a "
            f"justification for a provably shard-local fold)"))
        return


def extract_pool_lambda_violations(relpath, index):
    """Finds lambdas handed to the pool/driver entry points (inline or via
    a nearby `name = [...]` binding) and runs the D8 analysis on each."""
    text = index.text
    seen_bodies = set()
    out = []
    for m in POOL_ENTRY_RE.finditer(text):
        open_idx = text.index("(", m.start())
        close = match_paren(text, open_idx)
        if close == -1:
            continue
        found = find_lambda(text, open_idx + 1, close - 1)
        if found is None:
            # No lambda literal: resolve bare-identifier arguments bound to
            # a lambda earlier in the file (const auto body = [&](...) ...).
            for arg in split_top_commas(text[open_idx + 1:close - 1]):
                name = arg.strip()
                if not re.fullmatch(r"[A-Za-z_]\w*", name):
                    continue
                best = None
                for b in re.finditer(
                        rf"\b{re.escape(name)}\s*=\s*\[", text):
                    if b.start() < m.start():
                        best = b
                if best is None:
                    continue
                found = find_lambda(text, best.end() - 1, len(text))
                if found:
                    break
        if found is None:
            continue
        cap_start, body_start, body_end = found
        if (cap_start, body_end) in seen_bodies:
            continue
        seen_bodies.add((cap_start, body_end))
        out.extend(analyze_pool_lambda(relpath, index, cap_start,
                                       body_start, body_end))
    return out


# ----------------------------------------------------- layer manifest + L*

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


class LayerManifest:
    def __init__(self, layers, allowed):
        self.layers = layers      # name -> (rank, [path prefixes])
        self.allowed = allowed    # set of (from_layer, to_layer)
        # Longest-prefix lookup table.
        self._prefixes = sorted(
            ((prefix, name) for name, (_, prefixes) in layers.items()
             for prefix in prefixes),
            key=lambda e: -len(e[0]))

    def layer_of(self, relpath):
        for prefix, name in self._prefixes:
            if relpath.startswith(prefix):
                return name
        return None

    def rank_of(self, layer):
        return self.layers[layer][0]


def _fallback_parse_toml(text):
    """Minimal parser for the restricted layers.toml schema ([[layer]] /
    [[allow]] tables with string/int/string-array values) for Pythons
    without tomllib."""
    doc = {"layer": [], "allow": []}
    current = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"\[\[(\w+)\]\]", line)
        if m:
            current = {}
            doc.setdefault(m.group(1), []).append(current)
            continue
        m = re.fullmatch(r"(\w+)\s*=\s*(.+)", line)
        if not m or current is None:
            raise ValueError(f"unsupported layers.toml line: {raw!r}")
        key, value = m.group(1), m.group(2).strip()
        if value.startswith("["):
            current[key] = re.findall(r'"([^"]*)"', value)
        elif value.startswith('"'):
            current[key] = value.strip('"')
        else:
            current[key] = int(value)
    return doc


def load_manifest(path):
    """Parses and validates layers.toml. Raises ValueError on any problem
    (the CI gate treats a broken manifest as a hard configure error)."""
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
        doc = tomllib.loads(text)
    except ModuleNotFoundError:
        doc = _fallback_parse_toml(text)
    layers = {}
    for entry in doc.get("layer", []):
        name = entry.get("name")
        rank = entry.get("rank")
        paths = entry.get("paths")
        if not name or not isinstance(rank, int) or not paths:
            raise ValueError(
                f"layers.toml: every [[layer]] needs name/rank/paths "
                f"(got {entry!r})")
        if name in layers:
            raise ValueError(f"layers.toml: duplicate layer {name!r}")
        layers[name] = (rank, list(paths))
    if not layers:
        raise ValueError("layers.toml: no [[layer]] entries")
    allowed = set()
    for entry in doc.get("allow", []):
        src, dst, reason = (entry.get("from"), entry.get("to"),
                            entry.get("reason"))
        if not src or not dst or not reason:
            raise ValueError(
                "layers.toml: every [[allow]] needs from/to/reason "
                "(the reason is mandatory, like a suppression "
                "justification)")
        for layer in (src, dst):
            if layer not in layers:
                raise ValueError(
                    f"layers.toml: [[allow]] references unknown layer "
                    f"{layer!r}")
        allowed.add((src, dst))
    return LayerManifest(layers, allowed)


class IncludeGraph:
    """File-level include DAG over the lint targets, edges resolved
    per-TU against the compile database's -I directories."""

    def __init__(self, root):
        self.root = root
        self.edges = {}           # relpath -> {included relpath: line}

    def add_file(self, relpath, path, raw_lines, code_lines, incdirs):
        out = self.edges.setdefault(relpath, {})
        for lineno, raw in enumerate(raw_lines, start=1):
            # The tokenizer blanks string literals, so match the raw line
            # for the path — but require the directive to survive blanking,
            # which drops commented-out includes.
            m = INCLUDE_RE.match(raw)
            if not m or not re.match(r"\s*#\s*include\b",
                                     code_lines[lineno - 1]):
                continue
            target = self._resolve(m.group(1), path, incdirs)
            if target is not None and target not in out:
                out[target] = lineno

    def _resolve(self, spec, including, incdirs):
        for base in [including.parent, *incdirs]:
            candidate = (base / spec)
            if candidate.is_file():
                try:
                    rel = candidate.resolve().relative_to(self.root)
                except ValueError:
                    return None  # outside the repo (system/gtest): ignore
                return rel.as_posix()
        return None

    def find_cycles(self):
        """One representative path per include cycle, deterministically.
        Returns [(cycle_path_list, anchor_file, anchor_line)] where the
        anchor is the include edge closing the cycle."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {}
        stack = []
        cycles = []

        def dfs(node):
            color[node] = GRAY
            stack.append(node)
            for target in sorted(self.edges.get(node, {})):
                state = color.get(target, WHITE)
                if state == GRAY:
                    start = stack.index(target)
                    cycle = stack[start:] + [target]
                    cycles.append(
                        (cycle, node, self.edges[node][target]))
                elif state == WHITE:
                    dfs(target)
            stack.pop()
            color[node] = BLACK

        sys.setrecursionlimit(max(10000, sys.getrecursionlimit()))
        for node in sorted(self.edges):
            if color.get(node, WHITE) == WHITE:
                dfs(node)
        return cycles

    def layer_edges(self):
        """Condensed (from_layer, to_layer) -> count view, manifest applied
        by the caller."""
        return {(a, b): line for a, targets in self.edges.items()
                for b, line in targets.items()}


def check_layers(graph, manifest, lint_targets):
    """L1 + L2 violations over the include graph."""
    violations = []
    for cycle, anchor, line in graph.find_cycles():
        path_text = " -> ".join(cycle)
        violations.append(Violation(
            anchor, line, 1, "L1",
            f"include cycle: {path_text}; break the cycle (forward-declare "
            f"or move the shared type down a layer)"))

    target_set = set(lint_targets)
    for src_file in sorted(graph.edges):
        src_layer = manifest.layer_of(src_file)
        if src_layer is None:
            if src_file in target_set:
                violations.append(Violation(
                    src_file, 1, 1, "L2",
                    "file not covered by layers.toml; add its directory "
                    "to a [[layer]] entry so the layer graph stays "
                    "complete"))
            continue
        for dst_file, line in sorted(graph.edges[src_file].items()):
            dst_layer = manifest.layer_of(dst_file)
            if dst_layer is None:
                continue  # reported once as the file's own L2 above
            if dst_layer == src_layer:
                continue
            if (src_layer, dst_layer) in manifest.allowed:
                continue
            src_rank = manifest.rank_of(src_layer)
            dst_rank = manifest.rank_of(dst_layer)
            if dst_rank > src_rank:
                violations.append(Violation(
                    src_file, line, 1, "L2",
                    f"upward include: layer '{src_layer}' (rank "
                    f"{src_rank}) includes '{dst_file}' from layer "
                    f"'{dst_layer}' (rank {dst_rank}); depend only on "
                    f"lower layers, or add a justified [[allow]] edge to "
                    f"layers.toml"))
            elif dst_rank == src_rank:
                violations.append(Violation(
                    src_file, line, 1, "L2",
                    f"cross-layer include between same-rank layers "
                    f"'{src_layer}' and '{dst_layer}': sibling layers "
                    f"(e.g. the engine families) stay mutually "
                    f"independent"))
    return violations


def emit_graph_dot(graph, manifest, violations, out_path):
    """File-level include graph as Graphviz, clustered by layer, with
    violating edges drawn red."""
    bad_edges = set()
    for v in violations:
        if v.rule_id in ("L1", "L2"):
            bad_edges.add((v.path, v.line))
    by_layer = {}
    for node in graph.edges:
        by_layer.setdefault(manifest.layer_of(node) or "?", []).append(node)
    lines = ["digraph papc_includes {",
             "  rankdir=BT;",
             "  node [shape=box, fontsize=9, margin=\"0.06,0.03\"];",
             "  edge [arrowsize=0.5, color=\"#999999\"];"]
    for layer in sorted(by_layer,
                        key=lambda l: manifest.layers.get(
                            l, (9999, []))[0]):
        rank = manifest.layers.get(layer, (None,))[0]
        lines.append(f"  subgraph \"cluster_{layer}\" {{")
        label = layer if rank is None else f"{layer} (rank {rank})"
        lines.append(f"    label=\"{label}\"; color=\"#bbbbbb\";")
        for node in sorted(by_layer[layer]):
            lines.append(f"    \"{node}\";")
        lines.append("  }")
    for src in sorted(graph.edges):
        for dst, line in sorted(graph.edges[src].items()):
            attr = ""
            if (src, line) in bad_edges:
                attr = " [color=red, penwidth=1.6]"
            lines.append(f"  \"{src}\" -> \"{dst}\"{attr};")
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def emit_layer_dot(graph, manifest, out_path):
    """Condensed layer-level DAG (the README diagram source)."""
    counts = {}
    for src, targets in graph.edges.items():
        src_layer = manifest.layer_of(src)
        for dst in targets:
            dst_layer = manifest.layer_of(dst)
            if (src_layer and dst_layer and src_layer != dst_layer):
                key = (src_layer, dst_layer)
                counts[key] = counts.get(key, 0) + 1
    lines = ["digraph papc_layers {",
             "  rankdir=BT;",
             "  node [shape=box, fontsize=11];"]
    for name in sorted(manifest.layers,
                       key=lambda n: (manifest.layers[n][0], n)):
        rank = manifest.layers[name][0]
        lines.append(f"  \"{name}\" [label=\"{name}\\nrank {rank}\"];")
    for (src, dst) in sorted(counts):
        lines.append(
            f"  \"{src}\" -> \"{dst}\" [label=\"{counts[(src, dst)]}\","
            f" fontsize=9];")
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# --------------------------------------------------------------- lint core

class FileLint:
    """Per-file lint artifacts shared by the per-file and whole-program
    passes: blanked code, suppressions, call-site extractions."""

    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        self.code_lines, comments = split_code_and_comments(text)
        self.supp = Suppressions(self.code_lines, comments)
        self.index = LineIndex(self.code_lines)

    def snippet(self, line):
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1].strip()
        return ""


def lint_per_file(fl):
    """All per-file rule violations (raw, pre-suppression) for one file."""
    profile = profile_for(fl.relpath)
    raw = []
    for rule in RULES:
        if rule.rule_id in profile and rule.applies(fl.relpath):
            raw.extend(rule.check(fl.relpath, fl.code_lines))

    if "D8" in profile:
        raw.extend(extract_pool_lambda_violations(fl.relpath, fl.index))

    if fl.relpath == D5_ALLOWED and not any(
            D5_REQUIRED_TOKEN.search(line) for line in fl.code_lines):
        raw.append(Violation(
            fl.relpath, 1, 1, "D5",
            "simd_gather.cpp carries intrinsics but no static_assert'ed "
            "layout checks; pin the lane/stride assumptions"))
    return raw


def apply_suppressions(raw, files_by_relpath):
    """Splits raw violations into (active, suppressed) against each file's
    suppression table, and appends SUPP findings for bare allow()s."""
    active, suppressed = [], []
    for v in raw:
        fl = files_by_relpath.get(v.path)
        if fl is not None and fl.supp.allows(v.line, v.rule_id):
            suppressed.append(v)
        else:
            active.append(v)
    return active, suppressed


# -------------------------------------------------------------- file lists

def find_repo_root(start):
    p = start.resolve()
    for candidate in [p, *p.parents]:
        if all((candidate / m).exists() for m in REPO_MARKERS):
            return candidate
    return start.resolve()


def incdirs_from_compdb(compdb_arg, root):
    """Per-file -I directories from the compile database, plus the set of
    TU files it lists inside the repo. Returns (tu_files, incdirs_map,
    default_incdirs) or None on error."""
    compdb_path = Path(compdb_arg)
    if compdb_path.is_dir():
        compdb_path = compdb_path / "compile_commands.json"
    if not compdb_path.is_file():
        print(f"papc_lint: no compile database at {compdb_path} "
              f"(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return None
    try:
        entries = json.loads(compdb_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"papc_lint: cannot parse {compdb_path}: {err}",
              file=sys.stderr)
        return None

    tu_files = set()
    incdirs_map = {}
    all_incdirs = []
    for entry in entries:
        f = Path(entry.get("file", ""))
        directory = Path(entry.get("directory", "."))
        if not f.is_absolute():
            f = directory / f
        try:
            f = f.resolve()
        except OSError:
            continue
        command = entry.get("command", "") or " ".join(
            entry.get("arguments", []))
        incdirs = []
        for m in re.finditer(r"-I\s*(\S+)", command):
            d = Path(m.group(1))
            if not d.is_absolute():
                d = directory / d
            incdirs.append(d)
            if d not in all_incdirs:
                all_incdirs.append(d)
        incdirs_map[f] = incdirs
        if f.is_file() and str(f).startswith(str(root) + "/"):
            tu_files.add(f)
    default = [d for d in all_incdirs] or [root / "src"]
    return tu_files, incdirs_map, default


def sweep_tree(root, dirs=("src", "tests", "bench", "examples")):
    """Every .cpp/.hpp under the given top-level dirs (fixtures excluded).
    This keeps coverage independent of which targets the build that
    exported the compile database enabled."""
    files = set()
    for top in dirs:
        base = root / top
        if not base.is_dir():
            continue
        for pattern in ("*.cpp", "*.hpp"):
            for f in base.rglob(pattern):
                rel = f.resolve().relative_to(root).as_posix()
                if any(rel.startswith(p) for p in EXCLUDED_PREFIXES):
                    continue
                files.add(f.resolve())
    return files


# -------------------------------------------------------------------- main

def build_report(targets_count, active, suppressed, files_by_relpath):
    def row(v, status):
        fl = files_by_relpath.get(v.path)
        return {
            "rule": v.rule_id,
            "name": RULE_NAMES.get(v.rule_id, v.rule_id),
            "file": v.path,
            "line": v.line,
            "col": v.col,
            "message": v.message,
            "snippet": fl.snippet(v.line) if fl else "",
            "status": status,
        }
    findings = [row(v, "violation") for v in active]
    findings += [row(v, "suppressed") for v in suppressed]
    findings.sort(key=lambda r: (r["file"], r["line"], r["col"], r["rule"]))
    return {
        "tool": "papc_lint",
        "version": 2,
        "summary": {
            "files": targets_count,
            "violations": len(active),
            "suppressed": len(suppressed),
        },
        "findings": findings,
    }


def main(argv):
    parser = argparse.ArgumentParser(
        prog="papc_lint",
        description="determinism + architecture lint for papc "
                    "(rules D1-D8, L1-L2; see --list-rules)")
    parser.add_argument("--compdb", metavar="BUILDDIR",
                        help="build dir (or compile_commands.json); lints "
                             "the whole repo (src/tests/bench/examples) "
                             "with includes resolved per-TU")
    parser.add_argument("--files", nargs="+", metavar="FILE",
                        help="explicit files to lint (fixture/test mode; "
                             "per-file rules + D7 within the set)")
    parser.add_argument("--tree", metavar="DIR",
                        help="lint DIR as a self-contained mini-repo (all "
                             "passes incl. the layer graph; fixture trees)")
    parser.add_argument("--as-dir", metavar="RELDIR",
                        help="with --files: pretend each file lives in this "
                             "repo-relative directory (rule scoping)")
    parser.add_argument("--root", metavar="DIR",
                        help="repo root (default: auto-detected)")
    parser.add_argument("--layers", metavar="FILE",
                        help="layer manifest (default: layers.toml next to "
                             "this script)")
    parser.add_argument("--graph", metavar="OUT.dot",
                        help="write the file-level include graph (Graphviz)")
    parser.add_argument("--layer-graph", metavar="OUT.dot",
                        help="write the condensed layer DAG (Graphviz)")
    parser.add_argument("--json", metavar="OUT.json",
                        help="write findings as structured JSON "
                             "(rule/file/line/snippet/suppression status)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions annotations")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name in RULE_NAMES.items():
            print(f"{rule_id:5} {name}")
        return 0

    if args.tree:
        root = Path(args.tree).resolve()
    elif args.root:
        root = Path(args.root).resolve()
    else:
        root = find_repo_root(
            Path(args.compdb or args.files and args.files[0] or "."))

    manifest = None
    run_layer_pass = bool(args.compdb or args.tree)
    if run_layer_pass or args.layers:
        manifest_path = (Path(args.layers) if args.layers
                         else Path(__file__).resolve().parent / "layers.toml")
        try:
            manifest = load_manifest(manifest_path)
        except (OSError, ValueError) as err:
            print(f"papc_lint: bad layer manifest: {err}", file=sys.stderr)
            return 2

    incdirs_map = {}
    default_incdirs = [root / "src"]
    if args.compdb:
        loaded = incdirs_from_compdb(args.compdb, root)
        if loaded is None:
            return 2
        tu_files, incdirs_map, default_incdirs = loaded
        files = sweep_tree(root) | tu_files
        targets = sorted(
            (f, f.relative_to(root).as_posix()) for f in files
            if str(f).startswith(str(root) + "/"))
    elif args.tree:
        files = sweep_tree(root, dirs=tuple(
            p.name for p in sorted(root.iterdir()) if p.is_dir()))
        default_incdirs = [root / "src", root]
        targets = sorted((f, f.relative_to(root).as_posix()) for f in files)
        if not targets:
            print(f"papc_lint: no lintable files under {root}",
                  file=sys.stderr)
            return 2
    elif args.files:
        targets = []
        for name in args.files:
            f = Path(name).resolve()
            if args.as_dir:
                rel = f"{args.as_dir.rstrip('/')}/{f.name}"
            else:
                try:
                    rel = f.relative_to(root).as_posix()
                except ValueError:
                    rel = f.name
            targets.append((f, rel))
    else:
        parser.error("one of --compdb, --tree or --files is required")
        return 2

    # ------------------------------------------------- pass 1: per file
    files_by_relpath = {}
    raw = []
    constants = {}
    substream_sites = []
    graph = IncludeGraph(root) if run_layer_pass else None
    for path, relpath in targets:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            print(f"papc_lint: cannot read {path}: {err}", file=sys.stderr)
            return 2
        fl = FileLint(path, relpath, text)
        files_by_relpath[relpath] = fl
        raw.extend(lint_per_file(fl))
        parse_constants(fl.code_lines, constants)
        if graph is not None:
            graph.add_file(relpath, path, fl.raw_lines, fl.code_lines,
                           incdirs_map.get(path, default_incdirs))

    # --------------------------------------- pass 2: substream audit (D7)
    for relpath, fl in sorted(files_by_relpath.items()):
        if "D7" in profile_for(relpath):
            substream_sites.extend(
                extract_substream_sites(relpath, fl.index, constants))
    for a, b in audit_substreams(substream_sites):
        a_fl = files_by_relpath.get(a.relpath)
        b_fl = files_by_relpath.get(b.relpath)
        # A justified suppression on EITHER end clears the pair; route it
        # through the normal machinery by extending the anchor's cover.
        if ((a_fl and a_fl.supp.allows(a.line, "D7")) and b_fl):
            b_fl.supp.covered.setdefault(b.line, set()).add("D7")
        raw.append(Violation(
            b.relpath, b.line, b.col, "D7",
            f"substream labels {b.describe_labels()} under parent "
            f"'{b.parent}' may collide with {a.relpath}:{a.line} "
            f"{a.describe_labels()} — colliding (parent, labels) tuples "
            f"derive correlated streams; disambiguate a label component "
            f"or suppress with a justification on either site"))

    # -------------------------------------------- pass 3: layer graph (L*)
    layer_violations = []
    if graph is not None and manifest is not None:
        lint_target_rels = [rel for _, rel in targets]
        layer_violations = check_layers(graph, manifest, lint_target_rels)
        raw.extend(layer_violations)

    # ----------------------------------------------- suppressions + output
    active, suppressed_list = apply_suppressions(raw, files_by_relpath)
    for relpath, fl in sorted(files_by_relpath.items()):
        for line, rules in fl.supp.unjustified:
            if "SUPP" not in profile_for(relpath):
                continue
            active.append(Violation(
                relpath, line, 1, "SUPP",
                f"papc-lint: allow({rules}) has no justification; write "
                f"`papc-lint: allow({rules}): <why this is safe>`"))

    if graph is not None and manifest is not None:
        if args.graph:
            emit_graph_dot(graph, manifest, active, Path(args.graph))
        if args.layer_graph:
            emit_layer_dot(graph, manifest, Path(args.layer_graph))
    elif args.graph or args.layer_graph:
        print("papc_lint: --graph/--layer-graph need --compdb or --tree",
              file=sys.stderr)
        return 2

    active.sort(key=Violation.key)
    for v in active:
        name = RULE_NAMES.get(v.rule_id, v.rule_id)
        if args.github:
            print(f"::error file={v.path},line={v.line},col={v.col},"
                  f"title=papc_lint {v.rule_id} ({name})::{v.message}")
        else:
            print(f"{v.path}:{v.line}:{v.col}: [{v.rule_id} {name}] "
                  f"{v.message}")

    if args.json:
        report = build_report(len(targets), active, suppressed_list,
                              files_by_relpath)
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"papc_lint: {len(targets)} files, {len(active)} "
          f"violation(s), {len(suppressed_list)} suppressed",
          file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
